"""Property tests of the monotone p-axis bound reuse (ERRev* monotone in p).

With ``reuse_p_axis_bounds`` enabled each point's binary search starts from the
previous point's certified ``beta_low`` instead of 0.  The contract under test:
for *every* grid the certified interval of every point still brackets ERRev*
(checked against the cold-interval analysis, whose interval brackets ERRev* by
Theorem 3.1), stays epsilon-tight, and the reported value matches the
cold-interval result within epsilon.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import AnalysisConfig, AttackParams, ProtocolParams, SweepConfig, run_sweep
from repro.analysis import formal_analysis
from repro.attacks import build_selfish_forks_mdp

EPSILON = 1e-2
ATTACK = AttackParams(depth=1, forks=1, max_fork_length=4)

p_grids = st.lists(
    st.integers(min_value=0, max_value=45).map(lambda i: round(0.01 * i, 2)),
    min_size=2,
    max_size=4,
    unique=True,
).map(sorted)


@st.composite
def reuse_scenarios(draw):
    return draw(p_grids), draw(st.sampled_from([0.0, 0.25, 0.5, 1.0]))


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(scenario=reuse_scenarios())
def test_bound_reuse_preserves_certified_intervals(scenario):
    p_values, gamma = scenario
    config = SweepConfig(
        p_values=tuple(p_values),
        gammas=(gamma,),
        attack_configs=(ATTACK,),
        include_honest=False,
        include_single_tree=False,
        analysis=AnalysisConfig(epsilon=EPSILON),
        reuse_p_axis_bounds=True,
    )
    sweep = run_sweep(config)
    assert not sweep.failures
    assert [point.p for point in sweep.points] == list(p_values)

    for point in sweep.points:
        cold = formal_analysis(
            build_selfish_forks_mdp(ProtocolParams(p=point.p, gamma=gamma), ATTACK).mdp,
            AnalysisConfig(epsilon=EPSILON),
        )
        # Epsilon-tight certified interval, even when started from a reused bound.
        assert point.beta_up - point.beta_low < EPSILON
        # Both intervals bracket ERRev* (Theorem 3.1), so they must overlap:
        # beta_low <= ERRev* <= beta_up checked via the cold certificate.
        assert point.beta_low <= cold.beta_up + 1e-12
        assert point.beta_up >= cold.beta_low - 1e-12
        # And the reported value agrees with the cold-interval result within epsilon.
        assert point.errev == pytest.approx(
            cold.strategy_errev if cold.strategy_errev is not None else cold.errev_lower_bound,
            abs=EPSILON,
        )
        # The certified lower bound never exceeds the value the strategy achieves.
        assert point.beta_low <= point.errev + 1e-9


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(scenario=reuse_scenarios())
def test_bound_reuse_monotone_lower_bounds(scenario):
    """Along an ascending p grid the certified lower bounds are non-decreasing."""
    p_values, gamma = scenario
    config = SweepConfig(
        p_values=tuple(p_values),
        gammas=(gamma,),
        attack_configs=(ATTACK,),
        include_honest=False,
        include_single_tree=False,
        analysis=AnalysisConfig(epsilon=EPSILON),
        reuse_p_axis_bounds=True,
    )
    sweep = run_sweep(config)
    bounds = [point.beta_low for point in sweep.points]
    assert all(b >= a - 1e-12 for a, b in zip(bounds, bounds[1:]))
