"""Tests of the shared-memory results plane (:mod:`repro.core.results_plane`).

Mirrors the model-plane suite's contracts for the return path: every
:class:`PointOutcome` field round-trips through a packed record byte-exactly,
pooled sweeps return outcomes with **zero pickled result payloads**, and the
segment lifecycle never leaks -- unlinked after a clean pool shutdown and after
a simulated worker crash alike, on fork and spawn start methods.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import pytest

from repro import AnalysisConfig, AttackParams, SweepConfig
from repro.core.engine import PointOutcome, execute_sweep
from repro.core.results_plane import (
    ERROR_BYTES,
    active_results_plane_names,
    attach_results_plane,
    create_results_plane,
    forget_inherited_results_planes,
    install_results_plane,
    installed_results_plane,
)
from repro.exceptions import ModelError


def segment_exists(name: str) -> bool:
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    segment.close()
    return True


def full_outcome(**overrides) -> PointOutcome:
    """A PointOutcome with every optional field populated."""
    values = dict(
        gamma_index=1,
        p_index=2,
        attack_index=0,
        p=0.30000000000000004,  # a float that exposes any repr sloppiness
        gamma=0.5,
        series="ours(d=2,f=1)",
        errev=0.3391549026187659,
        seconds=0.1234,
        solver_iterations=17,
        num_states=148,
        error=None,
        beta_low=0.3386230468750001,
        beta_up=0.33935546875,
        solver_backend="policy_iteration",
        cancelled_iterations=42,
        portfolio_races=9,
        portfolio_launches_avoided=4,
    )
    values.update(overrides)
    return PointOutcome(**values)


@pytest.fixture()
def plane():
    plane = create_results_plane(2, 3, 2)
    yield plane
    plane.release()


class TestRecordRoundTrip:
    def test_every_field_round_trips_byte_exactly(self, plane):
        outcome = full_outcome()
        assert plane.write(outcome)
        slot = plane.slot_of(outcome.gamma_index, outcome.p_index, outcome.attack_index)
        assert plane.read(slot) == outcome

    def test_none_fields_round_trip_as_none(self, plane):
        failed = full_outcome(
            gamma_index=0,
            p_index=0,
            errev=None,
            error="ConfigurationError: p must lie in [0, 1], got 1.5",
            beta_low=None,
            beta_up=None,
            solver_backend=None,
            cancelled_iterations=None,
            portfolio_races=None,
            portfolio_launches_avoided=None,
            solver_iterations=0,
            num_states=0,
        )
        assert plane.write(failed)
        assert plane.read(plane.slot_of(0, 0, 0)) == failed

    def test_unicode_error_strings_round_trip(self, plane):
        outcome = full_outcome(errev=None, error="SolverError: β-interval dégénéré ≤ ε")
        assert plane.write(outcome)
        restored = plane.read(plane.slot_of(1, 2, 0))
        assert restored.error == outcome.error

    def test_zero_errev_distinct_from_missing(self, plane):
        assert plane.write(full_outcome(errev=0.0))
        assert plane.read(plane.slot_of(1, 2, 0)).errev == 0.0

    def test_oversized_error_string_is_refused_not_truncated(self, plane):
        oversized = full_outcome(errev=None, error="x" * (ERROR_BYTES + 1))
        assert not plane.write(oversized)
        assert plane.read(plane.slot_of(1, 2, 0)) is None

    def test_trailing_nul_string_is_refused(self, plane):
        """Fixed-size numpy bytes fields strip trailing NULs: spill, not corrupt."""
        assert not plane.write(full_outcome(errev=None, error="boom\x00"))

    def test_out_of_grid_outcome_is_refused(self, plane):
        assert not plane.write(full_outcome(gamma_index=7))

    def test_unwritten_and_midwrite_slots_read_as_none(self, plane):
        assert plane.read(0) is None
        outcome = full_outcome(gamma_index=0, p_index=0)
        assert plane.write(outcome)
        slot = plane.slot_of(0, 0, 0)
        # Simulate a writer that died mid-record: odd seq means "in flux".
        plane._records["seq"][slot] = 3
        assert plane.read(slot) is None

    def test_drain_new_returns_each_record_once(self, plane):
        first = full_outcome(gamma_index=0, p_index=0)
        second = full_outcome(gamma_index=1, p_index=1)
        assert plane.write(first)
        assert [outcome for outcome in plane.drain_new()] == [first]
        assert plane.write(second)
        assert plane.drain_new() == [second]
        assert plane.drain_new() == []


class TestPlaneLifecycle:
    def test_attach_reads_creator_records(self):
        plane = create_results_plane(1, 2, 1)
        try:
            outcome = full_outcome(gamma_index=0, p_index=1, attack_index=0)
            assert plane.write(outcome)
            forget_inherited_results_planes()  # force a real second mapping
            attached = attach_results_plane(plane.name)
            try:
                assert attached.read(attached.slot_of(0, 1, 0)) == outcome
                assert attached.num_slots == plane.num_slots
            finally:
                attached.release()
            assert segment_exists(plane.name), "worker release must not unlink"
        finally:
            plane.release()
        assert not segment_exists(plane.name)

    def test_create_empty_grid_rejected(self):
        with pytest.raises(ModelError):
            create_results_plane(0, 3, 2)

    def test_attach_racing_creator_unlink_gets_clean_error(self):
        """Unknown-name and foreign-segment refusal now live in the shared
        conformance suite (``test_shm_conformance.py``); what stays here is the
        race an attacher can lose: the creator unlinked first."""
        plane = create_results_plane(1, 1, 1)
        name = plane.name
        forget_inherited_results_planes()  # force the real mapping path
        plane.release()
        with pytest.raises(ModelError, match="not available"):
            attach_results_plane(name)

    def test_install_and_forget(self):
        plane = create_results_plane(1, 1, 1)
        try:
            forget_inherited_results_planes()
            installed = install_results_plane(plane.name)
            try:
                assert installed_results_plane() is installed
            finally:
                installed.release()
            assert installed_results_plane() is None, "a closed plane must not be handed out"
        finally:
            forget_inherited_results_planes()
            plane.release()


def sweep_grid(**kwargs) -> SweepConfig:
    return SweepConfig(
        p_values=(0.1, 0.3),
        gammas=(0.5,),
        attack_configs=(AttackParams(1, 1, 4), AttackParams(2, 1, 4)),
        analysis=AnalysisConfig(epsilon=1e-2),
        **kwargs,
    )


def capture_results_plane_names(monkeypatch) -> list:
    """Record the segment names the engine creates during a sweep."""
    import repro.core.engine as engine_module
    import repro.core.results_plane as results_module

    names = []
    original = results_module.create_results_plane

    def capturing(*args):
        plane = original(*args)
        names.append(plane.name)
        return plane

    monkeypatch.setattr(results_module, "create_results_plane", capturing)
    # The engine imports the factory lazily from the module, so patching the
    # module attribute is enough; assert that stays true.
    assert engine_module is not None
    return names


class TestEngineIntegration:
    def test_pooled_sweep_returns_zero_pickled_payloads(self):
        """Acceptance: every outcome of a healthy pooled sweep rides the plane."""
        sweep = execute_sweep(sweep_grid(workers=2))
        assert not sweep.failures
        stats = sweep.metadata["results_plane"]
        assert stats["enabled"]
        assert stats["via_pickle"] == 0
        assert stats["synthesized"] == 0
        assert stats["via_plane"] == 4  # 1 gamma x 2 p x 2 attacks
        assert stats["slots"] == 4

    def test_plane_and_pickle_paths_compute_identical_points(self):
        serial = execute_sweep(sweep_grid(workers=1))
        plane_on = execute_sweep(sweep_grid(workers=2))
        plane_off = execute_sweep(sweep_grid(workers=2, use_results_plane=False))
        tuples = lambda sweep: [  # noqa: E731
            (p.p, p.gamma, p.series, p.errev, p.beta_low, p.beta_up) for p in sweep.points
        ]
        assert tuples(plane_on) == tuples(serial)
        assert tuples(plane_off) == tuples(serial)
        assert plane_off.metadata["results_plane"]["enabled"] is False
        assert plane_off.metadata["results_plane"]["via_pickle"] == 4

    def test_segment_unlinked_after_pool_shutdown(self, monkeypatch):
        names = capture_results_plane_names(monkeypatch)
        sweep = execute_sweep(sweep_grid(workers=2))
        assert not sweep.failures
        assert names, "the engine must create a results plane for a pooled sweep"
        for name in names:
            assert not segment_exists(name)
            assert name not in active_results_plane_names()

    def test_worker_crash_does_not_leak_segment(self, monkeypatch):
        """A pool whose workers die must still unlink the results plane."""
        import os

        import repro.core.engine as engine_module

        names = capture_results_plane_names(monkeypatch)

        def die(task, portfolio_history=None):
            os._exit(1)

        monkeypatch.setattr(engine_module, "_run_attack_task", die)
        monkeypatch.setenv("REPRO_TEST_START_METHOD", "fork")
        sweep = execute_sweep(sweep_grid(workers=2))
        assert sweep.failures and all(
            "worker crashed" in failure.message for failure in sweep.failures
        )
        assert sweep.metadata["results_plane"]["synthesized"] == 4
        assert names
        for name in names:
            assert not segment_exists(name)

    def test_spawn_started_pool_matches_serial(self, monkeypatch):
        """Satellite: the plane works under a spawn start method too."""
        serial = execute_sweep(sweep_grid(workers=1))
        monkeypatch.setenv("REPRO_TEST_START_METHOD", "spawn")
        spawned = execute_sweep(sweep_grid(workers=2))
        assert not spawned.failures
        assert spawned.metadata["results_plane"]["via_pickle"] == 0
        assert spawned.metadata["results_plane"]["via_plane"] == 4
        assert [(p.p, p.gamma, p.series, p.errev) for p in spawned.points] == [
            (p.p, p.gamma, p.series, p.errev) for p in serial.points
        ]

    def test_oversized_error_spills_to_pickle_untruncated(self, monkeypatch):
        """An error string too large for a record must arrive complete via pickle."""
        import repro.analysis as analysis_module
        import repro.core.engine as engine_module

        marker = "E" * (ERROR_BYTES + 100)

        def explode(*args, **kwargs):
            raise RuntimeError(marker)

        monkeypatch.setattr(engine_module, "formal_analysis", explode)
        assert analysis_module is not None
        monkeypatch.setenv("REPRO_TEST_START_METHOD", "fork")
        config = sweep_grid(workers=2)
        config.include_honest = False
        config.include_single_tree = False
        sweep = execute_sweep(config)
        assert len(sweep.failures) == 4
        assert all(marker in failure.message for failure in sweep.failures)
        assert sweep.metadata["results_plane"]["via_pickle"] == 4
        assert sweep.metadata["results_plane"]["via_plane"] == 0


class TestInstallConcurrency:
    def test_concurrent_install_leaves_consistent_sink(self):
        """Racing installs must end with one coherent installed plane.

        Regression for the unguarded ``_INSTALLED_PLANE`` rebinding (RL002):
        install/forget now update the global under the registry lock.
        """
        import threading

        plane = create_results_plane(1, 1, 1)
        handles = []
        errors = []
        try:
            forget_inherited_results_planes()
            barrier = threading.Barrier(4)

            def hit():
                barrier.wait()
                try:
                    handles.append(install_results_plane(plane.name))
                except Exception as exc:  # pragma: no cover - the regression
                    errors.append(exc)

            threads = [threading.Thread(target=hit) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
            installed = installed_results_plane()
            assert installed in handles
            assert not installed.closed
        finally:
            for handle in handles:
                handle.release()
            forget_inherited_results_planes()
            plane.release()
