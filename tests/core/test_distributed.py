"""Tests of the distributed multi-host sweep fabric (repro.core.distributed).

The integration tests run a real loopback fabric: the coordinator listens on
127.0.0.1 and workers are separate ``python -m repro worker`` processes, so the
full wire path (framing, structure shipping, heartbeats, reassignment) is
exercised exactly as it would be across hosts.
"""

from __future__ import annotations

import os
import socket
import struct
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.config import AnalysisConfig, AttackParams, ProtocolParams
from repro.core.distributed import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
    outcome_from_wire,
    outcome_to_wire,
    parse_address,
    run_distributed_sweep,
    task_from_wire,
    task_to_wire,
)
from repro.core.engine import AttackTask, PointOutcome, _build_tasks
from repro.core.shared_structures import pack_structures, unpack_structures
from repro.core.sweep import SweepConfig, run_sweep
from repro.attacks import get_model_structure
from repro.exceptions import ConfigurationError, ModelError

_SRC = Path(__file__).resolve().parents[2] / "src"


# ------------------------------------------------------------------- framing


def test_frame_roundtrip_with_payload():
    header = {"type": "welcome", "worker_id": 3, "structures": True}
    payload = bytes(range(256)) * 7
    frame = encode_frame(header, payload)
    body_len = int.from_bytes(frame[:4], "big")
    assert body_len == len(frame) - 4
    decoded_header, decoded_payload = decode_frame(frame[4:])
    assert decoded_header == header
    assert decoded_payload == payload


def test_frame_roundtrip_empty_payload():
    header, payload = decode_frame(encode_frame({"type": "heartbeat"})[4:])
    assert header == {"type": "heartbeat"}
    assert payload == b""


def test_decode_frame_rejects_garbage():
    with pytest.raises(ProtocolError):
        decode_frame(b"\x00")  # truncated
    with pytest.raises(ProtocolError):
        decode_frame(b"\x00\x00\x00\xff")  # header overruns body
    bad_json = b"\x00\x00\x00\x02{]"
    with pytest.raises(ProtocolError):
        decode_frame(bad_json)
    no_type = encode_frame({"kind": "nope"})[4:]
    with pytest.raises(ProtocolError):
        decode_frame(no_type)


class _HugePayload(bytes):
    """A bytes subclass lying about its length to keep the test allocation-free."""

    def __len__(self):
        return MAX_FRAME_BYTES + 1


def test_encode_frame_rejects_oversized():
    with pytest.raises(ProtocolError):
        encode_frame({"type": "welcome"}, _HugePayload())


def test_parse_address():
    assert parse_address("10.0.0.1:7355") == ("10.0.0.1", 7355)
    assert parse_address(":8000") == ("127.0.0.1", 8000)
    assert parse_address("example.org:0") == ("example.org", 0)
    for bad in ("7355", "host:", "host:notaport", "host:70000"):
        with pytest.raises(ValueError):
            parse_address(bad)


# ------------------------------------------------------------ wire encodings


def test_task_wire_roundtrip():
    config = SweepConfig(
        p_values=(0.0, 0.1),
        gammas=(0.25,),
        attack_configs=(AttackParams(depth=2, forks=1),),
        analysis=AnalysisConfig(epsilon=1e-2, solver="value_iteration", batch_probes=3),
        reuse_p_axis_bounds=True,
    )
    for task in _build_tasks(config):
        restored = task_from_wire(task_to_wire(task))
        assert isinstance(restored, AttackTask)
        assert restored == task


def test_outcome_wire_roundtrip_preserves_floats_exactly():
    outcome = PointOutcome(
        gamma_index=1,
        p_index=2,
        attack_index=0,
        p=0.30000000000000004,  # a float that exposes any repr sloppiness
        gamma=0.5,
        series="ours(d=2,f=1)",
        errev=0.3391549026187659,
        seconds=0.1234,
        solver_iterations=17,
        num_states=148,
        beta_low=0.3386230468750001,
        beta_up=0.33935546875,
        solver_backend="policy_iteration",
        cancelled_iterations=None,
    )
    restored = outcome_from_wire(outcome_to_wire(outcome))
    assert restored == outcome
    failed = PointOutcome(
        gamma_index=0, p_index=0, attack_index=0, p=0.0, gamma=0.0,
        series="s", errev=None, seconds=0.0, solver_iterations=0,
        num_states=0, error="ValueError: boom",
    )
    assert outcome_from_wire(outcome_to_wire(failed)) == failed


def test_pack_unpack_structures_bit_for_bit():
    structure = get_model_structure(
        AttackParams(depth=2, forks=1), ProtocolParams(p=0.3, gamma=0.5)
    )
    blob = pack_structures([structure])
    (restored,) = unpack_structures(blob)
    original_buffers = structure.to_buffers()
    restored_buffers = restored.to_buffers()
    for key in structure.BUFFER_KEYS:
        assert np.array_equal(original_buffers[key], restored_buffers[key]), key
    protocol = ProtocolParams(p=0.3, gamma=0.5)
    assert np.array_equal(
        structure.instantiate(protocol).trans_prob, restored.instantiate(protocol).trans_prob
    )


def test_unpack_structures_rejects_garbage():
    with pytest.raises(ModelError):
        unpack_structures(b"not a structure payload at all" * 10)


# ------------------------------------------------------------- configuration


def test_sweep_config_rejects_coordinator_and_connect():
    with pytest.raises(ConfigurationError):
        SweepConfig(coordinator="127.0.0.1:1", connect="127.0.0.1:2")


def test_sweep_config_rejects_bad_addresses_and_counts():
    with pytest.raises(ConfigurationError):
        SweepConfig(coordinator="no-port")
    with pytest.raises(ConfigurationError):
        SweepConfig(connect="host:notaport")
    with pytest.raises(ConfigurationError):
        SweepConfig(coordinator="127.0.0.1:0", distributed_workers=-1)
    with pytest.raises(ConfigurationError):
        SweepConfig(distributed_workers=2)  # needs a coordinator address


def test_run_sweep_refuses_worker_config():
    with pytest.raises(ValueError, match="repro worker"):
        run_sweep(SweepConfig(connect="127.0.0.1:7355"))


def test_coordinator_times_out_without_workers():
    config = SweepConfig(
        p_values=(0.1,),
        gammas=(0.5,),
        attack_configs=(AttackParams(depth=1, forks=1),),
        coordinator="127.0.0.1:0",
    )
    with pytest.raises(ModelError, match="did not complete"):
        run_distributed_sweep(config, timeout=0.5)


# ---------------------------------------------------------------- loopback


def _free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _spawn_worker(port: int, *, capacity: int = 1) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=str(_SRC))
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--connect",
            f"127.0.0.1:{port}",
            "--capacity",
            str(capacity),
            "--heartbeat-seconds",
            "1",
            "--connect-retry-seconds",
            "30",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )


def _base_grid(**overrides) -> dict:
    base = dict(
        p_values=(0.0, 0.05, 0.1, 0.15),
        gammas=(0.5,),
        attack_configs=(AttackParams(depth=1, forks=1), AttackParams(depth=2, forks=1)),
        analysis=AnalysisConfig(epsilon=1e-2),
    )
    base.update(overrides)
    return base


def _assert_same_points(serial, distributed):
    assert [  # canonical order is identical...
        (point.p, point.gamma, point.series) for point in serial.points
    ] == [(point.p, point.gamma, point.series) for point in distributed.points]
    for ours, theirs in zip(serial.points, distributed.points):
        # ...and the certified values agree bit-for-bit (timings differ).
        assert ours.errev == theirs.errev
        assert ours.beta_low == theirs.beta_low
        assert ours.beta_up == theirs.beta_up
        assert ours.solver_iterations == theirs.solver_iterations


def test_loopback_distributed_matches_serial_bit_for_bit():
    serial = run_sweep(SweepConfig(**_base_grid()))
    port = _free_port()
    workers = [_spawn_worker(port) for _ in range(2)]
    try:
        distributed = run_sweep(
            SweepConfig(
                **_base_grid(), coordinator=f"127.0.0.1:{port}", distributed_workers=2
            )
        )
    finally:
        outputs = []
        for worker in workers:
            out, _ = worker.communicate(timeout=30)
            outputs.append(out)
    assert not distributed.failures
    _assert_same_points(serial, distributed)
    fabric = distributed.metadata["distributed"]
    assert fabric["units"] == 8
    assert len(fabric["workers"]) == 2
    for name, stats in fabric["workers"].items():
        # The acceptance invariant: remote workers never explore.
        assert stats["builds"] == 0, name
        assert stats["attaches"] > 0, name
    assert sum(stats["units"] for stats in fabric["workers"].values()) == 8
    for worker, out in zip(workers, outputs):
        assert worker.returncode == 0
        assert "clean shutdown" in out
        assert "builds=0" in out


def test_loopback_distributed_with_bound_reuse_matches_serial():
    grid = _base_grid(reuse_p_axis_bounds=True)
    serial = run_sweep(SweepConfig(**grid))
    port = _free_port()
    workers = [_spawn_worker(port) for _ in range(2)]
    try:
        distributed = run_sweep(
            SweepConfig(**grid, coordinator=f"127.0.0.1:{port}", distributed_workers=2)
        )
    finally:
        for worker in workers:
            worker.communicate(timeout=30)
    assert not distributed.failures
    # One unit per (gamma, attack) series: the whole p chain stays on one host.
    assert distributed.metadata["distributed"]["units"] == 2
    _assert_same_points(serial, distributed)


def test_distributed_sweep_survives_killed_worker():
    grid = _base_grid(p_values=(0.0, 0.05, 0.1, 0.15, 0.2, 0.25))
    serial = run_sweep(SweepConfig(**grid))
    port = _free_port()
    workers = [_spawn_worker(port) for _ in range(2)]
    killed = []

    def progress(message: str) -> None:
        if "ERRev=" in message and not killed:
            killed.append(True)
            workers[0].kill()  # SIGKILL mid-sweep: units must be reassigned

    try:
        distributed = run_sweep(
            SweepConfig(**grid, coordinator=f"127.0.0.1:{port}", distributed_workers=2),
            progress=progress,
        )
    finally:
        for worker in workers:
            worker.communicate(timeout=30)
    assert killed, "no progress message ever arrived to trigger the kill"
    assert not distributed.failures
    _assert_same_points(serial, distributed)
    assert workers[1].returncode == 0


def _read_frame_blocking(sock: socket.socket) -> dict:
    """Read one length-prefixed frame from a blocking socket; return its header."""
    def read_exact(count: int) -> bytes:
        data = b""
        while len(data) < count:
            chunk = sock.recv(count - len(data))
            if not chunk:
                raise ConnectionError("peer closed")
            data += chunk
        return data

    (body_len,) = struct.unpack(">I", read_exact(4))
    header, _ = decode_frame(read_exact(body_len))
    return header


def test_garbage_hello_is_rejected_and_sweep_survives():
    """Regression: a malformed hello must refuse *that* worker, not kill the sweep.

    ``float(header["heartbeat_seconds"])`` / the capacity parse used to raise
    uncaught inside the coordinator (and zero-or-negative values were
    silently clamped).  Three garbage hellos now each draw a clean ``error``
    frame while a healthy worker completes the whole grid.
    """
    import threading
    import time as time_module

    listening = threading.Event()
    bound = {}

    def on_listen(host: str, port: int) -> None:
        bound["port"] = port
        listening.set()

    grid = _base_grid(p_values=(0.0, 0.05))
    result = {}

    def coordinate() -> None:
        result["sweep"] = run_distributed_sweep(
            SweepConfig(**grid, coordinator="127.0.0.1:0"),
            timeout=120.0,
            on_listen=on_listen,
        )

    coordinator = threading.Thread(target=coordinate, daemon=True)
    coordinator.start()
    assert listening.wait(timeout=30.0), "coordinator never started listening"
    port = bound["port"]

    garbage_hellos = [
        {"type": "hello", "protocol": 1, "capacity": "lots"},  # non-integer capacity
        {"type": "hello", "protocol": 1, "capacity": 2.9},  # truncation is not consent
        {"type": "hello", "protocol": 1, "capacity": 0},  # starves the scheduler
        {"type": "hello", "protocol": 1, "heartbeat_seconds": -3},  # immortal worker
        {"type": "hello", "protocol": 1, "heartbeat_seconds": "soon"},  # non-numeric
    ]
    for hello in garbage_hellos:
        with socket.create_connection(("127.0.0.1", port), timeout=10.0) as sock:
            sock.sendall(encode_frame(hello))
            header = _read_frame_blocking(sock)
            assert header["type"] == "error", hello
            assert "capacity" in header["message"] or "heartbeat" in header["message"]

    worker = _spawn_worker(port)
    try:
        deadline = time_module.monotonic() + 120.0
        while coordinator.is_alive() and time_module.monotonic() < deadline:
            coordinator.join(timeout=0.5)
    finally:
        out, _ = worker.communicate(timeout=30)
    assert not coordinator.is_alive(), "sweep never completed after garbage hellos"
    sweep = result["sweep"]
    assert not sweep.failures
    _assert_same_points(run_sweep(SweepConfig(**grid)), sweep)
    assert worker.returncode == 0
    assert "clean shutdown" in out


def test_late_worker_joins_running_sweep():
    """A single worker suffices; distributed_workers=1 must not wait for more."""
    port = _free_port()
    worker = _spawn_worker(port, capacity=2)
    try:
        distributed = run_sweep(
            SweepConfig(**_base_grid(), coordinator=f"127.0.0.1:{port}")
        )
    finally:
        out, _ = worker.communicate(timeout=30)
    assert not distributed.failures
    assert len(distributed.points) == len(run_sweep(SweepConfig(**_base_grid())).points)
    assert worker.returncode == 0
