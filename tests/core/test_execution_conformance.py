"""The backend-conformance suite: every execution backend, one set of invariants.

Parametrized over every :data:`execution_conformance.CONTRACTS` entry (serial,
pool, distributed) and -- for cross-process backends -- over the ``fork`` and
``spawn`` start methods.  A future backend inherits this entire suite by
registering one :class:`~execution_conformance.BackendContract`.

The invariants are the acceptance criteria of the execution plane: bit-for-bit
equality with the serial reference, zero builds inside workers, delta-only
journal resume, per-point failure isolation, and graceful cancellation with no
shared-memory residue and a resumable journal.
"""

from __future__ import annotations

import pytest
from execution_conformance import (
    CONTRACTS,
    assert_bit_for_bit,
    base_grid,
    failing_grid,
    serial_reference,
)
from shm_conformance import shm_residue

pytestmark = pytest.mark.parametrize("kind", sorted(CONTRACTS))


@pytest.fixture(params=["fork", "spawn"])
def start_method(request, kind, monkeypatch):
    """Pin the pool start method; single run for non-pool backends."""
    if not CONTRACTS[kind].cross_process and request.param != "fork":
        pytest.skip("start method does not apply to this backend")
    monkeypatch.setenv("REPRO_TEST_START_METHOD", request.param)
    return request.param


class TestBitForBit:
    def test_matches_serial_reference(self, kind, start_method):
        """Certified bounds and CSV value columns agree with serial exactly."""
        contract = CONTRACTS[kind]
        result = contract.execute(base_grid())
        assert not result.failures
        assert_bit_for_bit(serial_reference(), result)
        assert result.description

    def test_chained_series_match_reference(self, kind, start_method):
        """Bound-reuse chains (one unit per series) reproduce serial exactly."""
        contract = CONTRACTS[kind]
        result = contract.execute(base_grid(reuse_p_axis_bounds=True))
        assert not result.failures
        assert_bit_for_bit(serial_reference(chained=True), result)


class TestWorkerBuilds:
    def test_workers_never_explore(self, kind, start_method):
        """Acceptance invariant: worker processes perform zero builds."""
        contract = CONTRACTS[kind]
        if contract.worker_builds is None:
            pytest.skip("backend has no worker processes")
        builds = contract.worker_builds(base_grid())
        assert builds and all(count == 0 for count in builds)


class TestJournalResume:
    def test_resume_recomputes_nothing_after_a_complete_run(self, kind, tmp_path):
        """A resumed complete journal replays every point and records none."""
        contract = CONTRACTS[kind]
        journal_path = tmp_path / "sweep.journal"
        first = contract.execute(base_grid(), journal_path=journal_path)
        assert not first.failures
        first_meta = first.metadata["journal"]
        assert first_meta["recorded"] > 0 and first_meta["replayed"] == 0

        resumed = contract.execute(base_grid(), journal_path=journal_path, resume=True)
        assert not resumed.failures
        meta = resumed.metadata["journal"]
        assert meta["recorded"] == 0, "a complete journal must leave no delta"
        assert meta["replayed"] == first_meta["recorded"]
        assert meta["skipped_units"] > 0
        assert_bit_for_bit(first, resumed)


class TestFailureIsolation:
    def test_bad_point_is_isolated(self, kind):
        """One invalid grid point fails alone; its neighbours still certify."""
        contract = CONTRACTS[kind]
        result = contract.execute(failing_grid())
        assert [point.p for point in result.points] == [0.1, 0.3]
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.p == 1.5
        assert "ConfigurationError" in failure.message


class TestGracefulCancellation:
    def test_cancellation_leaves_resumable_journal_and_no_residue(self, kind, tmp_path):
        """Cancellation propagates, leaks nothing, and the journal resumes."""
        contract = CONTRACTS[kind]
        residue_before = shm_residue()
        journal_path = tmp_path / "sweep.journal"
        exc = contract.cancel(base_grid(), journal_path)
        assert isinstance(exc, contract.cancelled_type)
        assert shm_residue() == residue_before, "cancellation leaked shared memory"
        assert journal_path.exists(), "the journal must survive a cancellation"

        resumed = contract.execute(base_grid(), journal_path=journal_path, resume=True)
        assert not resumed.failures
        assert_bit_for_bit(serial_reference(), resumed)
        if contract.journals_before_cancel:
            assert resumed.metadata["journal"]["replayed"] > 0
