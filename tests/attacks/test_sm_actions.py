"""Tests of the ADOPT/OVERRIDE/WAIT/MATCH scenario (:mod:`repro.attacks.sm_actions`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import evaluate_strategy_errev, formal_analysis
from repro.attacks import clear_structure_cache, structure_cache_stats
from repro.attacks.registry import SupportSignature, get_attack
from repro.attacks.sm_actions import (
    ACTIVE,
    IRRELEVANT,
    RELEVANT,
    SmActionsStructure,
    build_sm_actions_mdp,
    honest_strategy_rows,
    simulate_sm_actions,
)
from repro.config import AnalysisConfig, AttackParams, ProtocolParams
from repro.core.shared_structures import pack_structures, unpack_structures
from repro.exceptions import ConfigurationError, ModelError
from repro.mdp import Strategy


def sm_attack(l=6, variant=""):
    return AttackParams(
        depth=1, forks=1, max_fork_length=l, scenario="sm-actions", variant=variant
    )


PROTOCOL = ProtocolParams(p=0.3, gamma=0.5)
ANALYSIS = AnalysisConfig(epsilon=1e-3)


class TestModelConstruction:
    def test_builds_and_probabilities_normalised(self):
        model = build_sm_actions_mdp(PROTOCOL, sm_attack())
        mdp = model.mdp
        assert mdp.num_states > 0
        sums = np.add.reduceat(mdp.trans_prob, mdp.row_trans_offsets[:-1])
        assert np.allclose(sums, 1.0)

    def test_initial_state_is_origin(self):
        model = build_sm_actions_mdp(PROTOCOL, sm_attack())
        assert model.mdp.state_of_label((0, 0, IRRELEVANT)) == model.mdp.initial_state

    def test_boundary_states_force_settlement(self):
        # Underpaying truncation: at a == l or h == l only adopt/override are
        # offered, so the truncated MDP stays unichain (no absorbing corner).
        attack = sm_attack(l=4)
        model = build_sm_actions_mdp(PROTOCOL, attack)
        mdp = model.mdp
        l = attack.max_fork_length
        for state_index, label in enumerate(mdp.state_labels):
            a, h, _fork = label
            if a == l or h == l:
                start = mdp.state_row_offsets[state_index]
                stop = mdp.state_row_offsets[state_index + 1]
                actions = {mdp.row_actions[row][0] for row in range(start, stop)}
                assert actions <= {"adopt", "override"}, label

    def test_overpaying_uses_settlement_rows(self):
        structure = get_attack("sm-actions").explore(
            sm_attack(l=4, variant="overpaying"), SupportSignature.of(PROTOCOL)
        )
        assert structure.settle_trans.size > 0
        rewards = structure._rewards_for(PROTOCOL)
        # Settlement rewards are patched in (attacker + honest components).
        assert not np.array_equal(
            rewards[structure.settle_trans], structure.trans_reward[structure.settle_trans]
        )

    def test_overpaying_rejects_majority_adversary(self):
        with pytest.raises(ModelError, match="p"):
            build_sm_actions_mdp(
                ProtocolParams(p=0.5, gamma=0.5), sm_attack(l=4, variant="overpaying")
            )

    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigurationError, match="variant"):
            build_sm_actions_mdp(PROTOCOL, sm_attack(variant="nope"))


class TestValues:
    def test_honest_strategy_earns_exactly_p(self):
        model = build_sm_actions_mdp(PROTOCOL, sm_attack())
        honest = Strategy(model.mdp, honest_strategy_rows(model.mdp))
        assert evaluate_strategy_errev(model.mdp, honest) == pytest.approx(0.3, abs=1e-9)

    def test_optimal_beats_honest_and_regimes_sandwich(self):
        under = formal_analysis(build_sm_actions_mdp(PROTOCOL, sm_attack()).mdp, ANALYSIS)
        over = formal_analysis(
            build_sm_actions_mdp(PROTOCOL, sm_attack(variant="overpaying")).mdp, ANALYSIS
        )
        assert under.errev_lower_bound > 0.3  # strictly profitable at p=0.3, gamma=0.5
        # Underpaying under-estimates, overpaying over-estimates the
        # untruncated optimum, so the certified bounds must sandwich.
        assert over.errev_lower_bound >= under.errev_lower_bound - ANALYSIS.epsilon

    def test_truncation_tightens_with_l(self):
        coarse = formal_analysis(build_sm_actions_mdp(PROTOCOL, sm_attack(l=4)).mdp, ANALYSIS)
        fine = formal_analysis(build_sm_actions_mdp(PROTOCOL, sm_attack(l=8)).mdp, ANALYSIS)
        assert fine.errev_lower_bound >= coarse.errev_lower_bound - ANALYSIS.epsilon


class TestSimulationAgreement:
    def test_monte_carlo_replay_matches_analysis(self):
        attack = sm_attack(l=8)
        model = build_sm_actions_mdp(PROTOCOL, attack)
        formal = formal_analysis(model.mdp, ANALYSIS)
        entry = get_attack("sm-actions")
        policy = entry.make_policy(formal.strategy)
        result = entry.simulate(PROTOCOL, attack, policy, num_steps=200_000, seed=3)
        assert result.relative_revenue == pytest.approx(formal.strategy_errev, abs=0.02)
        assert policy.unknown_states == 0

    def test_honest_replay_matches_p(self):
        attack = sm_attack(l=6)
        model = build_sm_actions_mdp(PROTOCOL, attack)
        policy = get_attack("sm-actions").make_policy(
            Strategy(model.mdp, honest_strategy_rows(model.mdp))
        )
        result = simulate_sm_actions(PROTOCOL, attack, policy, num_steps=200_000, seed=1)
        assert result.relative_revenue == pytest.approx(0.3, abs=0.02)


class TestBuffersAndCache:
    def test_buffer_roundtrip_bit_for_bit(self):
        structure = get_attack("sm-actions").explore(
            sm_attack(l=5), SupportSignature.of(PROTOCOL)
        )
        restored = SmActionsStructure.from_buffers(structure.to_buffers())
        assert restored.attack == structure.attack
        assert restored.scenario_id == structure.scenario_id
        for key in SmActionsStructure.BUFFER_KEYS:
            original, copy = structure.to_buffers()[key], restored.to_buffers()[key]
            assert np.array_equal(original, copy), key

    def test_shared_memory_pack_roundtrip(self):
        structures = [
            get_attack("sm-actions").explore(sm_attack(l=4), SupportSignature.of(PROTOCOL)),
            get_attack("sm-actions").explore(
                sm_attack(l=4, variant="overpaying"), SupportSignature.of(PROTOCOL)
            ),
        ]
        restored = unpack_structures(pack_structures(structures))
        assert len(restored) == 2
        for original, copy in zip(structures, restored):
            assert type(copy) is SmActionsStructure
            assert copy.attack == original.attack
            refilled = copy.instantiate(PROTOCOL)
            baseline = original.instantiate(PROTOCOL)
            assert np.array_equal(refilled.trans_prob, baseline.trans_prob)

    def test_structure_cache_hit_across_points(self):
        clear_structure_cache()
        attack = sm_attack(l=5)
        build_sm_actions_mdp(ProtocolParams(p=0.2, gamma=0.5), attack)
        before = structure_cache_stats()
        build_sm_actions_mdp(ProtocolParams(p=0.25, gamma=0.5), attack)
        after = structure_cache_stats()
        # Same (attack, signature) key: the second point refills the cached
        # skeleton instead of exploring again.
        assert after["builds"] == before["builds"]
        assert after["entries"] == before["entries"]


class TestGridAndNames:
    def test_series_name_includes_l_and_variant(self):
        entry = get_attack("sm-actions")
        assert entry.series_name(sm_attack(l=8)) == "sm-actions(l=8)"
        assert "overpaying" in entry.series_name(sm_attack(l=8, variant="overpaying"))

    def test_grid_specs(self):
        entry = get_attack("sm-actions")
        default = entry.grid_configs("default")
        assert [a.max_fork_length for a in default] == [4, 8]
        assert all(a.scenario == "sm-actions" for a in default)
        custom = entry.grid_configs("l4,l8:overpaying")
        assert custom[1].variant == "overpaying"
        with pytest.raises(ConfigurationError):
            entry.grid_configs("d2f1")  # selfish-forks token, not an sm-actions one
