"""Unit tests of the selfish-mining MDP transition kernel (Section 3.2)."""

from __future__ import annotations

import pytest

from repro.config import AttackParams, ProtocolParams
from repro.attacks.fork_state import (
    ADVERSARY,
    HONEST,
    TYPE_ADVERSARY,
    TYPE_HONEST,
    TYPE_MINING,
    MineAction,
    ReleaseAction,
    adversary_mining_targets,
    available_actions,
    incorporate_pending_honest_block,
    initial_state,
    mining_transitions,
    release_transitions,
    successor_distribution,
)

P03 = ProtocolParams(p=0.3, gamma=0.5)
D2F1 = AttackParams(depth=2, forks=1, max_fork_length=4)
D2F2 = AttackParams(depth=2, forks=2, max_fork_length=4)
D3F2 = AttackParams(depth=3, forks=2, max_fork_length=3)
D1F1 = AttackParams(depth=1, forks=1, max_fork_length=4)


def state(c_rows, owners, state_type):
    return (tuple(tuple(row) for row in c_rows), tuple(owners), state_type)


class TestInitialState:
    def test_shape(self):
        c_matrix, owners, state_type = initial_state(D3F2)
        assert len(c_matrix) == 3 and all(len(row) == 2 for row in c_matrix)
        assert owners == (HONEST, HONEST)
        assert state_type == TYPE_MINING

    def test_all_forks_empty(self):
        c_matrix, _, _ = initial_state(D2F2)
        assert all(length == 0 for row in c_matrix for length in row)

    def test_depth_one_has_empty_ownership(self):
        _, owners, _ = initial_state(D1F1)
        assert owners == ()


class TestMiningTargets:
    def test_initial_targets_one_per_depth(self):
        c_matrix, _, _ = initial_state(D3F2)
        targets = adversary_mining_targets(c_matrix)
        assert targets == [(1, 1, True), (2, 1, True), (3, 1, True)]

    def test_nonempty_fork_is_extended_and_new_slot_offered(self):
        targets = adversary_mining_targets(((2, 0),))
        assert (1, 1, False) in targets
        assert (1, 2, True) in targets

    def test_full_row_offers_no_new_slot(self):
        targets = adversary_mining_targets(((1, 2),))
        assert targets == [(1, 1, False), (1, 2, False)]

    def test_new_fork_uses_smallest_empty_slot(self):
        targets = adversary_mining_targets(((0, 3),))
        new_slots = [(i, j) for i, j, is_new in targets if is_new]
        assert new_slots == [(1, 1)]


class TestMiningTransitions:
    def test_probabilities_sum_to_one(self):
        transitions = mining_transitions(initial_state(D3F2), P03, D3F2)
        assert sum(prob for _, prob, _ in transitions) == pytest.approx(1.0)

    def test_honest_probability_matches_formula(self):
        # Initial state of d=3: sigma = 3 targets.
        transitions = mining_transitions(initial_state(D3F2), P03, D3F2)
        honest = [prob for (_, _, t), prob, _ in transitions if t == TYPE_HONEST]
        sigma = 3
        expected = (1 - 0.3) / (1 - 0.3 + 0.3 * sigma)
        assert sum(honest) == pytest.approx(expected)

    def test_adversarial_success_starts_new_fork(self):
        transitions = mining_transitions(initial_state(D2F1), P03, D2F1)
        adversarial_states = [s for s, _, _ in transitions if s[2] == TYPE_ADVERSARY]
        assert state([[1], [0]], [HONEST], TYPE_ADVERSARY) in adversarial_states
        assert state([[0], [1]], [HONEST], TYPE_ADVERSARY) in adversarial_states

    def test_adversarial_success_extends_existing_fork(self):
        start = state([[2], [0]], [HONEST], TYPE_MINING)
        transitions = mining_transitions(start, P03, D2F1)
        successors = [s for s, _, _ in transitions]
        assert state([[3], [0]], [HONEST], TYPE_ADVERSARY) in successors

    def test_fork_length_is_capped_at_l(self):
        start = state([[4], [0]], [HONEST], TYPE_MINING)
        transitions = mining_transitions(start, P03, D2F1)
        for successor, _, _ in transitions:
            assert all(length <= 4 for row in successor[0] for length in row)

    def test_capped_fork_outcomes_are_aggregated(self):
        # Both forks capped: their two "discarded block" outcomes collapse into
        # one successor whose probability is the sum.
        attack = AttackParams(depth=1, forks=2, max_fork_length=1)
        start = state([[1, 1]], [], TYPE_MINING)
        transitions = mining_transitions(start, P03, attack)
        capped = [
            (s, prob)
            for s, prob, _ in transitions
            if s == state([[1, 1]], [], TYPE_ADVERSARY)
        ]
        assert len(capped) == 1
        sigma = 2
        assert capped[0][1] == pytest.approx(2 * 0.3 / (1 - 0.3 + 0.3 * sigma))

    def test_honest_outcome_is_pending_not_shifted(self):
        start = state([[2], [1]], [ADVERSARY], TYPE_MINING)
        transitions = mining_transitions(start, P03, D2F1)
        honest_successors = [s for s, _, _ in transitions if s[2] == TYPE_HONEST]
        assert honest_successors == [state([[2], [1]], [ADVERSARY], TYPE_HONEST)]

    def test_honest_outcome_has_no_immediate_reward(self):
        transitions = mining_transitions(initial_state(D2F1), P03, D2F1)
        for successor, _, reward in transitions:
            if successor[2] == TYPE_HONEST:
                assert reward == (0.0, 0.0)

    def test_adversarial_private_block_has_no_reward(self):
        transitions = mining_transitions(initial_state(D2F1), P03, D2F1)
        for successor, _, reward in transitions:
            if successor[2] == TYPE_ADVERSARY:
                assert reward == (0.0, 0.0)

    def test_p_zero_only_honest_outcome(self):
        transitions = mining_transitions(initial_state(D2F1), ProtocolParams(p=0.0, gamma=0.5), D2F1)
        assert len(transitions) == 1
        assert transitions[0][0][2] == TYPE_HONEST
        assert transitions[0][1] == pytest.approx(1.0)

    def test_p_one_no_honest_outcome(self):
        transitions = mining_transitions(initial_state(D2F1), ProtocolParams(p=1.0, gamma=0.5), D2F1)
        assert all(s[2] == TYPE_ADVERSARY for s, _, _ in transitions)
        assert sum(prob for _, prob, _ in transitions) == pytest.approx(1.0)

    def test_only_defined_for_mining_states(self):
        with pytest.raises(ValueError):
            mining_transitions(state([[0], [0]], [HONEST], TYPE_HONEST), P03, D2F1)


class TestIncorporatePendingBlock:
    def test_shift_and_new_tip(self):
        pending = state([[2], [1]], [ADVERSARY], TYPE_HONEST)
        successor, reward = incorporate_pending_honest_block(pending, D2F1)
        assert successor == state([[0], [2]], [HONEST], TYPE_MINING)
        # The adversary-owned block at depth d-1 = 1 is pushed to depth 2 = d and
        # becomes final.
        assert reward == (1.0, 0.0)

    def test_forks_at_depth_d_are_dropped(self):
        pending = state([[1], [3]], [HONEST], TYPE_HONEST)
        successor, reward = incorporate_pending_honest_block(pending, D2F1)
        assert successor[0] == ((0,), (1,))
        assert reward == (0.0, 1.0)

    def test_depth_one_rewards_the_pending_block_itself(self):
        pending = state([[2]], [], TYPE_HONEST)
        successor, reward = incorporate_pending_honest_block(pending, D1F1)
        assert successor == state([[0]], [], TYPE_MINING)
        assert reward == (0.0, 1.0)

    def test_requires_honest_type(self):
        with pytest.raises(ValueError):
            incorporate_pending_honest_block(initial_state(D2F1), D2F1)


class TestAvailableActions:
    def test_mining_state_only_mines(self):
        actions = available_actions(initial_state(D3F2), D3F2)
        assert actions == [MineAction()]

    def test_adversary_state_offers_winning_releases(self):
        s = state([[2], [1]], [HONEST], TYPE_ADVERSARY)
        actions = available_actions(s, D2F1)
        assert ReleaseAction(1, 1, 1) in actions
        assert ReleaseAction(1, 1, 2) in actions
        assert ReleaseAction(2, 1, 1) not in actions  # shorter than public chain

    def test_honest_state_offers_race_and_winning_releases(self):
        s = state([[2], [2]], [HONEST], TYPE_HONEST)
        actions = available_actions(s, D2F1)
        assert ReleaseAction(1, 1, 1) in actions  # race against the pending block
        assert ReleaseAction(1, 1, 2) in actions  # beats it outright
        assert ReleaseAction(2, 1, 2) in actions  # race from depth 2
        assert ReleaseAction(2, 1, 1) not in actions

    def test_empty_forks_offer_no_release(self):
        s = state([[0], [0]], [HONEST], TYPE_HONEST)
        assert available_actions(s, D2F1) == [MineAction()]

    def test_release_never_exceeds_fork_length(self):
        s = state([[3], [2]], [HONEST], TYPE_ADVERSARY)
        for action in available_actions(s, D2F1):
            if isinstance(action, ReleaseAction):
                assert action.blocks <= s[0][action.depth - 1][action.fork - 1]


class TestReleaseTransitions:
    def test_adversary_state_release_is_deterministic(self):
        s = state([[1], [0]], [HONEST], TYPE_ADVERSARY)
        transitions = release_transitions(s, ReleaseAction(1, 1, 1), P03, D2F1)
        assert len(transitions) == 1
        successor, prob, reward = transitions[0]
        assert prob == pytest.approx(1.0)
        assert successor[2] == TYPE_MINING
        # The released adversary block becomes the new tip (depth 1 < d, not yet
        # final) and pushes the old honest tip to depth 2 = d, finalising it.
        assert reward == (0.0, 1.0)
        assert successor[1] == (ADVERSARY,)

    def test_honest_state_race_outcomes(self):
        s = state([[1], [0]], [HONEST], TYPE_HONEST)
        transitions = release_transitions(s, ReleaseAction(1, 1, 1), P03, D2F1)
        assert len(transitions) == 2
        probabilities = sorted(prob for _, prob, _ in transitions)
        assert probabilities == [pytest.approx(0.5), pytest.approx(0.5)]

    def test_honest_state_race_gamma_zero_always_rejected(self):
        s = state([[1], [0]], [HONEST], TYPE_HONEST)
        transitions = release_transitions(
            s, ReleaseAction(1, 1, 1), ProtocolParams(p=0.3, gamma=0.0), D2F1
        )
        assert len(transitions) == 1
        successor, prob, reward = transitions[0]
        # Rejection incorporates the pending honest block (shift + reward).
        assert prob == pytest.approx(1.0)
        assert successor == state([[0], [1]], [HONEST], TYPE_MINING)
        assert reward == (0.0, 1.0)

    def test_honest_state_race_gamma_one_always_accepted(self):
        s = state([[1], [0]], [HONEST], TYPE_HONEST)
        transitions = release_transitions(
            s, ReleaseAction(1, 1, 1), ProtocolParams(p=0.3, gamma=1.0), D2F1
        )
        assert len(transitions) == 1
        successor, prob, _ = transitions[0]
        assert prob == pytest.approx(1.0)
        assert successor[1] == (ADVERSARY,)

    def test_honest_state_strictly_longer_release_always_accepted(self):
        s = state([[2], [0]], [HONEST], TYPE_HONEST)
        transitions = release_transitions(s, ReleaseAction(1, 1, 2), P03, D2F1)
        assert len(transitions) == 1
        successor, prob, reward = transitions[0]
        assert prob == pytest.approx(1.0)
        # Two adversary blocks published; the deeper one lands at depth 2 = d and
        # is final immediately.  The old honest tip is buried at depth 3 > d and
        # is finalised too, while the pending honest block is orphaned.
        assert reward == (1.0, 1.0)
        assert successor[1] == (ADVERSARY,)

    def test_deep_release_finalises_overtaken_blocks(self):
        # d = 3: fork of length 3 on the block at depth 2, tracked owners are
        # [honest(depth1), adversary(depth2)].  Publishing 3 blocks orphans the
        # depth-1 honest block, and pushes the new adversary blocks deep enough
        # that one of them is final; the depth-2 block moves to depth 5 > d.
        attack = AttackParams(depth=3, forks=1, max_fork_length=4)
        s = state([[0], [3], [0]], [HONEST, ADVERSARY], TYPE_ADVERSARY)
        transitions = release_transitions(s, ReleaseAction(2, 1, 3), P03, attack)
        successor, prob, reward = transitions[0]
        assert prob == pytest.approx(1.0)
        # shift = 3 - 1 = 2: new adversary blocks at depths 1..3, the one at
        # depth 3 is final (+1 adversary); the old depth-2 adversary block moves
        # to depth 4 > d and is final (+1 adversary).
        assert reward == (2.0, 0.0)
        assert successor[1] == (ADVERSARY, ADVERSARY)
        assert successor[2] == TYPE_MINING

    def test_remainder_becomes_fork_on_new_tip(self):
        s = state([[3], [0]], [HONEST], TYPE_ADVERSARY)
        transitions = release_transitions(s, ReleaseAction(1, 1, 1), P03, D2F1)
        successor, _, _ = transitions[0]
        # Two unpublished blocks remain as a fork on the new tip.
        assert successor[0][0][0] == 2

    def test_surviving_forks_keep_their_slot(self):
        # d=2, f=2: a fork on the tip is published (k=1); the *other* fork on the
        # old tip survives rooted at what is now depth 2.
        s = state([[1, 2], [0, 0]], [HONEST], TYPE_ADVERSARY)
        transitions = release_transitions(s, ReleaseAction(1, 1, 1), P03, D2F2)
        successor, _, _ = transitions[0]
        assert successor[0] == ((0, 0), (0, 2))

    def test_release_longer_than_fork_rejected(self):
        s = state([[1], [0]], [HONEST], TYPE_ADVERSARY)
        with pytest.raises(ValueError):
            release_transitions(s, ReleaseAction(1, 1, 2), P03, D2F1)

    def test_release_from_mining_state_rejected(self):
        with pytest.raises(ValueError):
            release_transitions(initial_state(D2F1), ReleaseAction(1, 1, 1), P03, D2F1)

    def test_losing_release_from_adversary_state_rejected(self):
        s = state([[0], [1]], [HONEST], TYPE_ADVERSARY)
        with pytest.raises(ValueError):
            release_transitions(s, ReleaseAction(2, 1, 1), P03, D2F1)


class TestSuccessorDistribution:
    def test_mine_in_adversary_state_resumes_mining(self):
        s = state([[1], [0]], [HONEST], TYPE_ADVERSARY)
        transitions = successor_distribution(s, MineAction(), P03, D2F1)
        assert transitions == [((s[0], s[1], TYPE_MINING), 1.0, (0.0, 0.0))]

    def test_mine_in_honest_state_incorporates_pending_block(self):
        s = state([[1], [0]], [ADVERSARY], TYPE_HONEST)
        transitions = successor_distribution(s, MineAction(), P03, D2F1)
        assert len(transitions) == 1
        successor, prob, reward = transitions[0]
        assert successor == state([[0], [1]], [HONEST], TYPE_MINING)
        assert reward == (1.0, 0.0)

    def test_unknown_action_type_rejected(self):
        with pytest.raises(TypeError):
            successor_distribution(initial_state(D2F1), "mine", P03, D2F1)

    @pytest.mark.parametrize("attack", [D1F1, D2F1, D2F2, D3F2])
    def test_probabilities_sum_to_one_for_every_action(self, attack):
        protocol = ProtocolParams(p=0.25, gamma=0.4)
        start = initial_state(attack)
        frontier = [start]
        seen = {start}
        for _ in range(200):
            if not frontier:
                break
            current = frontier.pop()
            for action in available_actions(current, attack):
                transitions = successor_distribution(current, action, protocol, attack)
                assert sum(prob for _, prob, _ in transitions) == pytest.approx(1.0)
                for successor, _, _ in transitions:
                    if successor not in seen:
                        seen.add(successor)
                        frontier.append(successor)
