"""Unit tests of the attack-scenario registry (:mod:`repro.attacks.registry`)."""

from __future__ import annotations

import pytest

from repro.attacks.registry import (
    AttackScenario,
    ScenarioStructure,
    get_attack,
    list_attacks,
    register_attack,
    resolve_scenario,
    scenario_id_for,
    unregister_attack,
)
from repro.config import AttackParams, known_scenario_names
from repro.exceptions import ConfigurationError, ModelError


class TestLookup:
    def test_builtins_are_registered(self):
        names = [entry.name for entry in list_attacks()]
        assert names == ["selfish-forks", "sm-actions"]

    def test_get_attack_returns_entry(self):
        entry = get_attack("selfish-forks")
        assert isinstance(entry, AttackScenario)
        assert entry.name == "selfish-forks"
        assert issubclass(entry.structure_cls, ScenarioStructure)

    def test_unknown_name_raises_and_lists_known(self):
        with pytest.raises(ConfigurationError, match="selfish-forks"):
            get_attack("no-such-attack")

    def test_scenario_id_format(self):
        for entry in list_attacks():
            assert entry.scenario_id == f"{entry.name}@{entry.version}"
            assert scenario_id_for(entry.name) == entry.scenario_id

    def test_entries_carry_descriptions(self):
        for entry in list_attacks():
            assert entry.description.strip()

    def test_proof_systems_resolve_to_classes(self):
        systems = get_attack("selfish-forks").proof_systems()
        assert "pow" in systems
        assert all(isinstance(cls, type) for cls in systems.values())


class TestRegistration:
    def test_duplicate_name_different_class_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):

            @register_attack("selfish-forks")
            class Imposter(ScenarioStructure):
                """An imposter scenario."""

    def test_reregistering_same_class_is_idempotent(self):
        cls = get_attack("sm-actions").structure_cls
        assert register_attack("sm-actions")(cls) is cls
        assert [entry.name for entry in list_attacks()].count("sm-actions") == 1

    def test_runtime_registration_roundtrip(self):
        @register_attack("test-dummy-scenario")
        class Dummy(ScenarioStructure):
            """A dummy scenario for registry tests."""

            SCENARIO_VERSION = 7

        try:
            entry = get_attack("test-dummy-scenario")
            assert entry.scenario_id == "test-dummy-scenario@7"
            assert "test-dummy-scenario" in known_scenario_names()
            # AttackParams accepts the runtime-registered name.
            AttackParams(scenario="test-dummy-scenario")
        finally:
            unregister_attack("test-dummy-scenario")
        assert "test-dummy-scenario" not in known_scenario_names()
        with pytest.raises(ConfigurationError):
            get_attack("test-dummy-scenario")

    def test_builtins_cannot_be_unregistered(self):
        with pytest.raises(ConfigurationError, match="built-in"):
            unregister_attack("selfish-forks")


class TestResolveScenario:
    def test_resolves_builtin_ids(self):
        for entry in list_attacks():
            assert resolve_scenario(entry.scenario_id) is entry

    @pytest.mark.parametrize("bad", ["selfish-forks", "@1", "selfish-forks@"])
    def test_malformed_id_raises(self, bad):
        with pytest.raises(ModelError, match="malformed"):
            resolve_scenario(bad)

    def test_unknown_name_raises(self):
        with pytest.raises(ModelError, match="cannot resolve"):
            resolve_scenario("no-such-attack@1")

    def test_version_mismatch_raises(self):
        with pytest.raises(ModelError, match="version mismatch"):
            resolve_scenario("selfish-forks@999")


class TestAttackParamsIntegration:
    def test_unknown_scenario_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="scenario"):
            AttackParams(scenario="no-such-attack")

    def test_scenario_and_variant_flow_into_to_dict(self):
        attack = AttackParams(scenario="sm-actions", variant="overpaying")
        row = attack.to_dict()
        assert row["scenario"] == "sm-actions"
        assert row["variant"] == "overpaying"


class TestConcurrency:
    def test_concurrent_builtin_loading_is_safe(self):
        """Racing threads through the lazy built-in import must not error.

        Regression for the unguarded ``_BUILTINS_LOADED`` rebinding (RL002):
        the flag is now double-checked under a dedicated lock.
        """
        import threading

        from repro.attacks import registry as registry_mod

        registry_mod._BUILTINS_LOADED = False
        barrier = threading.Barrier(8)
        errors = []

        def hit():
            barrier.wait()
            try:
                get_attack("selfish-forks")
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [threading.Thread(target=hit) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert registry_mod._BUILTINS_LOADED

    def test_builtin_scenarios_declare_buffer_keys_explicitly(self):
        """The plane layout is contract, not inheritance accident (RL005)."""
        for entry in list_attacks():
            assert "BUFFER_KEYS" in entry.structure_cls.__dict__, entry.name
            assert entry.structure_cls.BUFFER_KEYS[: len(ScenarioStructure.BUFFER_KEYS)] == (
                ScenarioStructure.BUFFER_KEYS
            )
