"""Tests of the cached structural skeleton (:mod:`repro.attacks.structure`).

The cached path must reproduce the legacy from-scratch :class:`MDPBuilder`
construction exactly in topology and to float precision in probabilities, for
interior and boundary protocol parameters alike.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import (
    SupportSignature,
    build_model_structure,
    build_selfish_forks_mdp,
    clear_structure_cache,
    get_model_structure,
    structure_cache_stats,
)
from repro.config import AttackParams, ProtocolParams
from repro.exceptions import ConfigurationError, ModelError


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_structure_cache()
    yield
    clear_structure_cache()


PROTOCOL_POINTS = [
    ProtocolParams(p=0.3, gamma=0.5),  # interior
    ProtocolParams(p=0.0, gamma=0.5),  # no adversarial mining
    ProtocolParams(p=1.0, gamma=0.5),  # no honest mining
    ProtocolParams(p=0.3, gamma=0.0),  # races always lost
    ProtocolParams(p=0.3, gamma=1.0),  # races always won
]


class TestRefillMatchesFromScratch:
    @pytest.mark.parametrize("protocol", PROTOCOL_POINTS, ids=lambda pr: f"p{pr.p}g{pr.gamma}")
    @pytest.mark.parametrize(
        "attack",
        [AttackParams(1, 1, 4), AttackParams(2, 1, 4), AttackParams(2, 2, 3)],
        ids=lambda a: f"d{a.depth}f{a.forks}l{a.max_fork_length}",
    )
    def test_cached_refill_equals_legacy_builder(self, protocol, attack):
        legacy = build_selfish_forks_mdp(protocol, attack, use_structure_cache=False).mdp
        cached = build_selfish_forks_mdp(protocol, attack, use_structure_cache=True).mdp
        assert cached.num_states == legacy.num_states
        assert cached.initial_state == legacy.initial_state
        assert cached.state_labels == legacy.state_labels
        assert cached.row_actions == legacy.row_actions
        assert np.array_equal(cached.row_state, legacy.row_state)
        assert np.array_equal(cached.state_row_offsets, legacy.state_row_offsets)
        assert np.array_equal(cached.row_trans_offsets, legacy.row_trans_offsets)
        assert np.array_equal(cached.trans_succ, legacy.trans_succ)
        assert np.array_equal(cached.trans_reward, legacy.trans_reward)
        np.testing.assert_allclose(cached.trans_prob, legacy.trans_prob, rtol=1e-13, atol=0.0)

    def test_probabilities_are_normalised(self):
        mdp = build_selfish_forks_mdp(ProtocolParams(p=0.3, gamma=0.5), AttackParams(2, 1, 4)).mdp
        sums = np.add.reduceat(mdp.trans_prob, mdp.row_trans_offsets[:-1])
        np.testing.assert_allclose(sums, 1.0, rtol=0.0, atol=1e-12)


class TestSupportSignature:
    def test_interior_point_signature(self):
        signature = SupportSignature.of(ProtocolParams(p=0.3, gamma=0.5))
        assert signature == SupportSignature(True, True, True, True)

    def test_boundary_signatures_differ(self):
        interior = SupportSignature.of(ProtocolParams(p=0.3, gamma=0.5))
        assert SupportSignature.of(ProtocolParams(p=0.0, gamma=0.5)) != interior
        assert SupportSignature.of(ProtocolParams(p=0.3, gamma=1.0)) != interior

    def test_instantiate_rejects_wrong_signature(self):
        attack = AttackParams(1, 1, 4)
        structure = build_model_structure(
            attack, SupportSignature.of(ProtocolParams(p=0.3, gamma=0.5))
        )
        with pytest.raises(ModelError):
            structure.instantiate(ProtocolParams(p=0.0, gamma=0.5))


class TestCacheBehaviour:
    def test_structure_is_shared_within_signature(self):
        attack = AttackParams(2, 1, 4)
        first = get_model_structure(attack, ProtocolParams(p=0.1, gamma=0.25))
        second = get_model_structure(attack, ProtocolParams(p=0.45, gamma=0.9))
        assert first is second

    def test_distinct_signature_builds_new_structure(self):
        attack = AttackParams(2, 1, 4)
        interior = get_model_structure(attack, ProtocolParams(p=0.1, gamma=0.5))
        boundary = get_model_structure(attack, ProtocolParams(p=0.0, gamma=0.5))
        assert interior is not boundary
        assert boundary.num_states < interior.num_states

    def test_max_states_cap_enforced_on_cache_hits(self):
        attack = AttackParams(2, 1, 4)
        protocol = ProtocolParams(p=0.3, gamma=0.5)
        get_model_structure(attack, protocol)  # populate
        with pytest.raises(ConfigurationError):
            get_model_structure(attack, protocol, max_states=10)

    def test_clear_and_stats(self):
        attack = AttackParams(1, 1, 4)
        get_model_structure(attack, ProtocolParams(p=0.3, gamma=0.5))
        stats = structure_cache_stats()
        assert stats["entries"] == 1 and stats["states"] > 0
        clear_structure_cache()
        assert structure_cache_stats()["entries"] == 0

    def test_repeated_instantiations_are_independent(self):
        """Refilled MDPs must not share mutable probability arrays."""
        attack = AttackParams(1, 1, 4)
        first = build_selfish_forks_mdp(ProtocolParams(p=0.2, gamma=0.5), attack).mdp
        before = first.trans_prob.copy()
        build_selfish_forks_mdp(ProtocolParams(p=0.4, gamma=0.5), attack)
        assert np.array_equal(first.trans_prob, before)
