"""Tests of the reachable-state MDP construction."""

from __future__ import annotations

import pytest

from repro.config import AttackParams, ProtocolParams
from repro.exceptions import ConfigurationError
from repro.mdp import validate_mdp
from repro.attacks import build_selfish_forks_mdp
from repro.attacks.fork_state import TYPE_MINING
from repro.attacks.selfish_forks import estimate_state_space_size


class TestModelConstruction:
    def test_initial_state_is_registered(self, model_d2f1):
        labels = model_d2f1.mdp.state_labels
        initial = labels[model_d2f1.mdp.initial_state]
        c_matrix, owners, state_type = initial
        assert state_type == TYPE_MINING
        assert all(length == 0 for row in c_matrix for length in row)

    def test_models_are_structurally_valid(self, model_d1f1, model_d2f1, model_d2f2):
        for model in (model_d1f1, model_d2f1, model_d2f2):
            assert validate_mdp(model.mdp).is_valid

    def test_reward_components(self, model_d2f1):
        assert model_d2f1.mdp.num_reward_components == 2

    def test_state_space_grows_with_depth_and_forks(self, model_d1f1, model_d2f1, model_d2f2):
        assert model_d1f1.num_states < model_d2f1.num_states < model_d2f2.num_states

    def test_state_space_within_theoretical_bound(self, model_d2f2):
        bound = estimate_state_space_size(model_d2f2.attack)
        assert model_d2f2.num_states <= bound

    def test_state_space_grows_with_max_fork_length(self, protocol_default):
        small = build_selfish_forks_mdp(
            protocol_default, AttackParams(depth=2, forks=1, max_fork_length=2)
        )
        large = build_selfish_forks_mdp(
            protocol_default, AttackParams(depth=2, forks=1, max_fork_length=4)
        )
        assert small.num_states < large.num_states

    def test_num_decision_states_positive(self, model_d2f1):
        assert 0 < model_d2f1.num_decision_states < model_d2f1.num_states

    def test_describe_mentions_parameters(self, model_d2f1):
        text = model_d2f1.describe()
        assert "d=2" in text and "f=1" in text and "states" in text

    def test_max_states_cap_enforced(self, protocol_default):
        with pytest.raises(ConfigurationError):
            build_selfish_forks_mdp(
                protocol_default,
                AttackParams(depth=2, forks=2, max_fork_length=4),
                max_states=10,
            )

    def test_gamma_does_not_change_state_space(self, attack_d2f1):
        low = build_selfish_forks_mdp(ProtocolParams(p=0.3, gamma=0.0), attack_d2f1)
        high = build_selfish_forks_mdp(ProtocolParams(p=0.3, gamma=1.0), attack_d2f1)
        # gamma only changes transition probabilities, not reachability...
        # except gamma in {0, 1} prunes zero-probability race branches, so the
        # gamma = 0 model can only be smaller or equal.
        assert low.num_states <= high.num_states

    def test_p_changes_probabilities_not_structure(self, attack_d2f1):
        small_p = build_selfish_forks_mdp(ProtocolParams(p=0.1, gamma=0.5), attack_d2f1)
        large_p = build_selfish_forks_mdp(ProtocolParams(p=0.4, gamma=0.5), attack_d2f1)
        assert small_p.num_states == large_p.num_states
        assert small_p.mdp.num_rows == large_p.mdp.num_rows

    def test_honest_strategy_always_mines(self, model_d2f1):
        strategy = model_d2f1.honest_strategy()
        for state in range(model_d2f1.mdp.num_states):
            assert strategy.action(state) == ("mine",)

    def test_all_actions_are_mine_or_release(self, model_d2f1):
        for action in model_d2f1.mdp.row_actions:
            assert action[0] in ("mine", "release")

    def test_release_labels_reference_valid_forks(self, model_d2f1):
        attack = model_d2f1.attack
        for action in model_d2f1.mdp.row_actions:
            if action[0] != "release":
                continue
            _, depth, fork, blocks = action
            assert 1 <= depth <= attack.depth
            assert 1 <= fork <= attack.forks
            assert 1 <= blocks <= attack.max_fork_length
