"""Tests of the baseline attacks: honest mining, Eyal-Sirer, single-tree."""

from __future__ import annotations

import pytest

from repro.config import AttackParams, ProtocolParams
from repro.analysis import evaluate_strategy_errev
from repro.attacks import (
    build_selfish_forks_mdp,
    eyal_sirer_profitability_threshold,
    eyal_sirer_relative_revenue,
    honest_errev,
    simulate_single_tree_errev,
    single_tree_errev,
)
from repro.attacks.honest import honest_strategy, immediate_release_strategy
from repro.attacks.single_tree import SingleTreeParams
from repro.exceptions import ConfigurationError


class TestHonestBaseline:
    @pytest.mark.parametrize("p", [0.0, 0.1, 0.25, 0.3, 0.5])
    def test_closed_form_equals_p(self, p):
        assert honest_errev(ProtocolParams(p=p, gamma=0.5)) == p

    def test_never_release_strategy_earns_nothing(self, model_d2f1):
        value = evaluate_strategy_errev(model_d2f1.mdp, honest_strategy(model_d2f1.mdp))
        assert value == pytest.approx(0.0, abs=1e-9)

    @pytest.mark.parametrize("p", [0.1, 0.2, 0.3, 0.4])
    def test_immediate_release_reproduces_honest_mining_for_d1f1(self, p):
        model = build_selfish_forks_mdp(
            ProtocolParams(p=p, gamma=0.5), AttackParams(depth=1, forks=1, max_fork_length=4)
        )
        value = evaluate_strategy_errev(model.mdp, immediate_release_strategy(model.mdp))
        assert value == pytest.approx(p, abs=1e-9)

    def test_immediate_release_is_gamma_independent_for_d1f1(self):
        attack = AttackParams(depth=1, forks=1, max_fork_length=4)
        values = []
        for gamma in (0.0, 1.0):
            model = build_selfish_forks_mdp(ProtocolParams(p=0.3, gamma=gamma), attack)
            values.append(
                evaluate_strategy_errev(model.mdp, immediate_release_strategy(model.mdp))
            )
        assert values[0] == pytest.approx(values[1], abs=1e-9)


class TestEyalSirer:
    def test_zero_and_full_power_boundaries(self):
        assert eyal_sirer_relative_revenue(0.0, 0.5) == 0.0
        assert eyal_sirer_relative_revenue(1.0, 0.5) == 1.0

    def test_known_value_at_one_third_gamma_zero(self):
        # At alpha = 1/3 and gamma = 0 the classic attack exactly breaks even.
        assert eyal_sirer_relative_revenue(1 / 3, 0.0) == pytest.approx(1 / 3, abs=1e-9)

    def test_unprofitable_below_threshold(self):
        assert eyal_sirer_relative_revenue(0.2, 0.0) < 0.2

    def test_profitable_above_threshold(self):
        assert eyal_sirer_relative_revenue(0.4, 0.0) > 0.4

    def test_gamma_one_always_profitable(self):
        for alpha in (0.05, 0.15, 0.3):
            assert eyal_sirer_relative_revenue(alpha, 1.0) > alpha

    def test_monotone_in_alpha(self):
        values = [eyal_sirer_relative_revenue(alpha, 0.5) for alpha in (0.1, 0.2, 0.3, 0.4)]
        assert values == sorted(values)

    def test_monotone_in_gamma(self):
        values = [eyal_sirer_relative_revenue(0.3, gamma) for gamma in (0.0, 0.5, 1.0)]
        assert values == sorted(values)

    def test_threshold_formula(self):
        assert eyal_sirer_profitability_threshold(0.0) == pytest.approx(1 / 3)
        assert eyal_sirer_profitability_threshold(1.0) == pytest.approx(0.0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            eyal_sirer_relative_revenue(1.5, 0.5)
        with pytest.raises(ConfigurationError):
            eyal_sirer_relative_revenue(0.5, -0.1)


class TestSingleTree:
    def test_boundaries(self):
        assert single_tree_errev(ProtocolParams(p=0.0, gamma=0.5)) == 0.0
        assert single_tree_errev(ProtocolParams(p=1.0, gamma=0.5)) == 1.0

    def test_monotone_in_p(self):
        values = [
            single_tree_errev(ProtocolParams(p=p, gamma=0.5)) for p in (0.1, 0.2, 0.3, 0.4)
        ]
        assert values == sorted(values)

    def test_monotone_in_gamma(self):
        values = [
            single_tree_errev(ProtocolParams(p=0.3, gamma=gamma)) for gamma in (0.0, 0.5, 1.0)
        ]
        assert values == sorted(values)

    def test_wider_tree_helps(self):
        narrow = single_tree_errev(
            ProtocolParams(p=0.3, gamma=0.5), SingleTreeParams(max_depth=4, max_width=1)
        )
        wide = single_tree_errev(
            ProtocolParams(p=0.3, gamma=0.5), SingleTreeParams(max_depth=4, max_width=5)
        )
        assert wide >= narrow

    def test_width_one_tree_close_to_classic_selfish_mining(self):
        # A width-1 tree is a single private chain; with the Eyal-Sirer
        # publication rule the result should be in the same ballpark as the
        # classic closed form (not identical: the fork length is capped at l).
        protocol = ProtocolParams(p=0.3, gamma=0.5)
        value = single_tree_errev(protocol, SingleTreeParams(max_depth=6, max_width=1))
        classic = eyal_sirer_relative_revenue(0.3, 0.5)
        assert value == pytest.approx(classic, abs=0.05)

    @pytest.mark.parametrize("gamma", [0.0, 0.5, 1.0])
    def test_monte_carlo_matches_exact_recursion(self, gamma):
        protocol = ProtocolParams(p=0.3, gamma=gamma)
        exact = single_tree_errev(protocol)
        estimate = simulate_single_tree_errev(protocol, num_rounds=8000, seed=7)
        assert estimate == pytest.approx(exact, abs=0.02)

    def test_monte_carlo_boundaries(self):
        assert simulate_single_tree_errev(ProtocolParams(p=0.0, gamma=0.5)) == 0.0
        assert simulate_single_tree_errev(ProtocolParams(p=1.0, gamma=0.5)) == 1.0

    def test_value_is_a_probability(self):
        for p in (0.05, 0.2, 0.45):
            value = single_tree_errev(ProtocolParams(p=p, gamma=0.75))
            assert 0.0 <= value <= 1.0

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            SingleTreeParams(max_depth=0, max_width=5)
        with pytest.raises(ConfigurationError):
            SingleTreeParams(max_depth=4, max_width=0)
