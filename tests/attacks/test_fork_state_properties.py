"""Property-based tests of the transition kernel over randomly drawn states."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import AttackParams, ProtocolParams
from repro.attacks.fork_state import (
    ADVERSARY,
    HONEST,
    TYPE_ADVERSARY,
    TYPE_HONEST,
    TYPE_MINING,
    ReleaseAction,
    available_actions,
    successor_distribution,
)


@st.composite
def attack_params(draw):
    depth = draw(st.integers(min_value=1, max_value=3))
    forks = draw(st.integers(min_value=1, max_value=2))
    max_fork_length = draw(st.integers(min_value=1, max_value=4))
    return AttackParams(depth=depth, forks=forks, max_fork_length=max_fork_length)


@st.composite
def protocol_params(draw):
    p = draw(st.floats(min_value=0.01, max_value=0.45))
    gamma = draw(st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]))
    return ProtocolParams(p=p, gamma=gamma)


@st.composite
def fork_states(draw, attack: AttackParams):
    c_matrix = tuple(
        tuple(
            draw(st.integers(min_value=0, max_value=attack.max_fork_length))
            for _ in range(attack.forks)
        )
        for _ in range(attack.depth)
    )
    owners = tuple(
        draw(st.sampled_from([HONEST, ADVERSARY])) for _ in range(attack.depth - 1)
    )
    state_type = draw(st.sampled_from([TYPE_MINING, TYPE_HONEST, TYPE_ADVERSARY]))
    return (c_matrix, owners, state_type)


@st.composite
def states_with_params(draw):
    attack = draw(attack_params())
    protocol = draw(protocol_params())
    state = draw(fork_states(attack))
    return protocol, attack, state


@settings(max_examples=150, deadline=None)
@given(bundle=states_with_params())
def test_every_action_yields_a_probability_distribution(bundle):
    protocol, attack, state = bundle
    for action in available_actions(state, attack):
        transitions = successor_distribution(state, action, protocol, attack)
        total = sum(prob for _, prob, _ in transitions)
        assert total == pytest.approx(1.0)
        assert all(prob > 0.0 for _, prob, _ in transitions)


@settings(max_examples=150, deadline=None)
@given(bundle=states_with_params())
def test_successor_states_are_well_formed(bundle):
    protocol, attack, state = bundle
    for action in available_actions(state, attack):
        for successor, _, _ in successor_distribution(state, action, protocol, attack):
            c_matrix, owners, state_type = successor
            assert len(c_matrix) == attack.depth
            assert all(len(row) == attack.forks for row in c_matrix)
            assert all(
                0 <= length <= attack.max_fork_length for row in c_matrix for length in row
            )
            assert len(owners) == attack.depth - 1
            assert all(owner in (HONEST, ADVERSARY) for owner in owners)
            assert state_type in (TYPE_MINING, TYPE_HONEST, TYPE_ADVERSARY)


@settings(max_examples=150, deadline=None)
@given(bundle=states_with_params())
def test_rewards_are_bounded_block_counts(bundle):
    protocol, attack, state = bundle
    # A single transition can finalise at most l new adversary blocks plus the
    # d - 1 tracked window blocks (plus, for d = 1, the pending honest block).
    bound = attack.max_fork_length + attack.depth
    for action in available_actions(state, attack):
        for _, _, (r_adv, r_hon) in successor_distribution(state, action, protocol, attack):
            assert 0.0 <= r_adv <= bound
            assert 0.0 <= r_hon <= bound


@settings(max_examples=150, deadline=None)
@given(bundle=states_with_params())
def test_mining_states_offer_only_mine(bundle):
    _, attack, state = bundle
    if state[2] == TYPE_MINING:
        assert len(available_actions(state, attack)) == 1


@settings(max_examples=150, deadline=None)
@given(bundle=states_with_params())
def test_release_actions_can_always_win_or_race(bundle):
    _, attack, state = bundle
    for action in available_actions(state, attack):
        if not isinstance(action, ReleaseAction):
            continue
        fork_length = state[0][action.depth - 1][action.fork - 1]
        assert 1 <= action.blocks <= fork_length
        # The published prefix must at least tie with the competing public chain.
        competing = action.depth - 1 + (1 if state[2] == TYPE_HONEST else 0)
        assert action.blocks >= competing
        assert action.blocks >= 1


@settings(max_examples=100, deadline=None)
@given(bundle=states_with_params())
def test_accepted_releases_put_adversary_blocks_on_top(bundle):
    protocol, attack, state = bundle
    if state[2] == TYPE_MINING:
        return
    for action in available_actions(state, attack):
        if not isinstance(action, ReleaseAction):
            continue
        competing = action.depth - 1 + (1 if state[2] == TYPE_HONEST else 0)
        if action.blocks <= competing:
            continue  # race outcome may be rejected; only check guaranteed wins
        for successor, _, _ in successor_distribution(state, action, protocol, attack):
            owners = successor[1]
            top = min(action.blocks, attack.depth - 1)
            assert all(owner == ADVERSARY for owner in owners[:top])
