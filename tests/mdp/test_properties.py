"""Property-based tests of the MDP substrate on randomly generated models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mdp import (
    MDPBuilder,
    Strategy,
    induced_markov_chain,
    policy_iteration,
    relative_value_iteration,
    solve_mean_payoff_lp,
    validate_mdp,
)

# Hypothesis strategy producing small random unichain-ish MDPs.  To guarantee
# the unichain property (needed by the average-reward solvers) every action
# distribution puts positive mass on state 0, so state 0 is in every recurrent
# class and there can only be one.


@st.composite
def random_mdps(draw):
    num_states = draw(st.integers(min_value=1, max_value=5))
    builder = MDPBuilder(num_reward_components=1)
    rng_seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(rng_seed)
    for state in range(num_states):
        num_actions = draw(st.integers(min_value=1, max_value=3))
        for action in range(num_actions):
            weights = rng.random(num_states) + 1e-3
            weights[0] += 1.0  # ensure positive mass on state 0
            weights /= weights.sum()
            reward = float(rng.uniform(-2.0, 2.0))
            transitions = [
                (succ, float(weights[succ]), (reward,)) for succ in range(num_states)
            ]
            builder.add_action(state, f"a{action}", transitions)
    return builder.build(initial_state=0)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(mdp=random_mdps())
def test_random_models_are_structurally_valid(mdp):
    report = validate_mdp(mdp, raise_on_error=False)
    assert report.is_valid


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(mdp=random_mdps())
def test_policy_iteration_matches_value_iteration(mdp):
    pi_result = policy_iteration(mdp, [1.0])
    vi_result = relative_value_iteration(mdp, [1.0], tolerance=1e-9)
    assert pi_result.gain == pytest.approx(vi_result.gain, abs=1e-5)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(mdp=random_mdps())
def test_linear_program_matches_policy_iteration(mdp):
    pi_result = policy_iteration(mdp, [1.0])
    lp_result = solve_mean_payoff_lp(mdp, [1.0])
    assert lp_result.gain == pytest.approx(pi_result.gain, abs=1e-5)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(mdp=random_mdps())
def test_gain_is_bounded_by_reward_range(mdp):
    result = policy_iteration(mdp, [1.0])
    bound = mdp.max_reward_magnitude() + 1e-9
    assert -bound <= result.gain <= bound


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(mdp=random_mdps())
def test_optimal_gain_dominates_fixed_strategies(mdp):
    optimal = policy_iteration(mdp, [1.0]).gain
    chain = induced_markov_chain(mdp, Strategy.first_action(mdp))
    fixed_gain = float(chain.long_run_reward([1.0])[0])
    assert optimal >= fixed_gain - 1e-6


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(mdp=random_mdps())
def test_stationary_distributions_are_probability_vectors(mdp):
    chain = induced_markov_chain(mdp, Strategy.first_action(mdp))
    pi = chain.stationary_distribution()
    assert pi.shape == (mdp.num_states,)
    assert np.all(pi >= -1e-12)
    assert pi.sum() == pytest.approx(1.0)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(mdp=random_mdps(), scale=st.floats(min_value=0.1, max_value=5.0))
def test_gain_scales_linearly_with_rewards(mdp, scale):
    base = policy_iteration(mdp, [1.0]).gain
    scaled = policy_iteration(mdp, [scale]).gain
    assert scaled == pytest.approx(scale * base, abs=1e-6)
