"""Tests of positional strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.mdp import MDPBuilder, Strategy
from repro.mdp.strategy import describe_strategy


@pytest.fixture()
def mdp():
    builder = MDPBuilder()
    builder.add_action("a", "stay", [("a", 1.0, (1.0,))])
    builder.add_action("a", "go", [("b", 1.0, (0.0,))])
    builder.add_action("b", "back", [("a", 1.0, (2.0,))])
    builder.add_action("b", "loop", [("b", 1.0, (0.5,))])
    return builder.build(initial_state="a")


class TestStrategy:
    def test_first_action(self, mdp):
        strategy = Strategy.first_action(mdp)
        assert strategy.action(mdp.state_of_label("a")) == "stay"
        assert strategy.action(mdp.state_of_label("b")) == "back"

    def test_from_action_map(self, mdp):
        strategy = Strategy.from_action_map(mdp, {"a": "go", "b": "loop"})
        assert strategy.action_of_label("a") == "go"
        assert strategy.action_of_label("b") == "loop"

    def test_from_action_map_defaults_missing_states(self, mdp):
        strategy = Strategy.from_action_map(mdp, {"a": "go"})
        assert strategy.action_of_label("b") == "back"

    def test_to_action_map_roundtrip(self, mdp):
        strategy = Strategy.from_action_map(mdp, {"a": "go", "b": "loop"})
        assert strategy.to_action_map() == {"a": "go", "b": "loop"}

    def test_rejects_wrong_shape(self, mdp):
        with pytest.raises(ModelError):
            Strategy(mdp, np.array([0]))

    def test_rejects_rows_of_other_states(self, mdp):
        # Row 0 belongs to state "a"; assigning it to state "b" must fail.
        with pytest.raises(ModelError):
            Strategy(mdp, np.array([0, 0]))

    def test_differs_from(self, mdp):
        one = Strategy.from_action_map(mdp, {"a": "stay", "b": "back"})
        two = Strategy.from_action_map(mdp, {"a": "go", "b": "back"})
        assert one.differs_from(two) == 1
        assert one.differs_from(one) == 0

    def test_differs_from_other_mdp_raises(self, mdp):
        builder = MDPBuilder()
        builder.add_action("x", "loop", [("x", 1.0, (0.0,))])
        other = builder.build(initial_state="x")
        with pytest.raises(ModelError):
            Strategy.first_action(mdp).differs_from(Strategy.first_action(other))

    def test_equality(self, mdp):
        assert Strategy.first_action(mdp) == Strategy.first_action(mdp)
        assert Strategy.first_action(mdp) != Strategy.from_action_map(mdp, {"a": "go"})

    def test_iteration_yields_rows(self, mdp):
        strategy = Strategy.first_action(mdp)
        assert list(strategy) == strategy.rows.tolist()

    def test_row_accessor(self, mdp):
        strategy = Strategy.from_action_map(mdp, {"a": "go"})
        state_a = mdp.state_of_label("a")
        assert mdp.row_actions[strategy.row(state_a)] == "go"


class TestDescribeStrategy:
    def test_lists_all_states(self, mdp):
        text = describe_strategy(Strategy.first_action(mdp), only_non_default=False)
        assert "'a'" in text and "'b'" in text

    def test_omits_default_action(self, mdp):
        strategy = Strategy.from_action_map(mdp, {"a": "stay", "b": "loop"})
        text = describe_strategy(strategy, default_action="stay")
        assert "'a'" not in text
        assert "'b'" in text

    def test_limit_truncates(self, mdp):
        text = describe_strategy(
            Strategy.first_action(mdp), only_non_default=False, limit=1
        )
        assert text.endswith("...")
