"""Tests of portfolio history seeding (:class:`repro.mdp.portfolio.PortfolioHistory`).

Seeding is a scheduling optimisation only: a seeded race must return the same
certified values as a cold race, merely skipping rival launches the recent
window proves unnecessary.
"""

from __future__ import annotations

import pytest

from repro import AnalysisConfig, AttackParams, ProtocolParams
from repro.analysis import formal_analysis
from repro.analysis.rewards import beta_reward_weights
from repro.attacks import build_selfish_forks_mdp
from repro.exceptions import SolverError
from repro.mdp import PortfolioHistory, SolverPortfolio, solve_mean_payoff

WEIGHTS = beta_reward_weights(0.4)


@pytest.fixture(scope="module")
def mdp():
    return build_selfish_forks_mdp(
        ProtocolParams(p=0.3, gamma=0.5), AttackParams(depth=2, forks=1, max_fork_length=4)
    ).mdp


class TestLeaderElection:
    def test_no_leader_before_min_streak(self):
        history = PortfolioHistory(min_streak=3)
        history.record_win("policy_iteration")
        history.record_win("policy_iteration")
        assert history.leader() is None
        history.record_win("policy_iteration")
        assert history.leader() == "policy_iteration"

    def test_single_rival_win_demotes_the_leader(self):
        history = PortfolioHistory(min_streak=3)
        for _ in range(10):
            history.record_win("policy_iteration")
        assert history.leader() == "policy_iteration"
        history.record_win("value_iteration")
        assert history.leader() is None

    def test_streak_without_window_majority_does_not_lead(self):
        history = PortfolioHistory(window=10, min_streak=2)
        # 6 VI wins then 2 PI wins: PI has the streak but not the majority.
        for _ in range(6):
            history.record_win("value_iteration")
        for _ in range(2):
            history.record_win("policy_iteration")
        assert history.leader() is None

    def test_window_slides(self):
        history = PortfolioHistory(window=4, min_streak=2)
        for _ in range(10):
            history.record_win("value_iteration")
        for _ in range(4):
            history.record_win("policy_iteration")
        # The VI era has slid out of the window entirely.
        assert history.leader() == "policy_iteration"

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SolverError):
            PortfolioHistory(window=0)
        with pytest.raises(SolverError):
            PortfolioHistory(min_streak=0)
        with pytest.raises(SolverError):
            PortfolioHistory(rival_delay=-0.1)


class TestSeededRaces:
    def test_seeded_race_matches_cold_values_and_avoids_launches(self, mdp):
        reference = solve_mean_payoff(mdp, WEIGHTS, solver="policy_iteration")
        history = PortfolioHistory(min_streak=2, rival_delay=5.0)
        # Deterministic leader: the window already names policy iteration.
        for _ in range(4):
            history.record_win("policy_iteration")
        portfolio = SolverPortfolio(history=history)
        solutions = [portfolio.solve(mdp, WEIGHTS) for _ in range(3)]
        for solution in solutions:
            assert solution.gain == pytest.approx(reference.gain, abs=1e-6)
            # The seeded leader finishes well inside the generous grace
            # period, so the rival is never launched and nothing is cancelled.
            assert solution.solver == "portfolio:policy_iteration"
            assert solution.cancelled_iterations == 0
        stats = history.stats()
        assert stats["races"] == 4 + 3
        assert stats["launches_avoided"] == 3
        assert stats["seeded_races"] == 3

    def test_history_threads_through_formal_analysis(self, mdp):
        cold = formal_analysis(mdp, AnalysisConfig(epsilon=1e-2, solver="portfolio"))
        history = PortfolioHistory(min_streak=2, rival_delay=5.0)
        seeded = formal_analysis(
            mdp,
            AnalysisConfig(epsilon=1e-2, solver="portfolio"),
            portfolio_history=history,
        )
        assert seeded.errev_lower_bound == pytest.approx(
            cold.errev_lower_bound, abs=1e-2
        )
        assert seeded.interval_width < 1e-2
        assert history.stats()["races"] > 0

    def test_leaderless_history_races_all_backends(self, mdp):
        history = PortfolioHistory(min_streak=1000)  # can never elect a leader
        portfolio = SolverPortfolio(history=history)
        solution = portfolio.solve(mdp, WEIGHTS)
        assert solution.solver.startswith("portfolio:")
        assert history.stats()["launches_avoided"] == 0
        assert history.stats()["seeded_races"] == 0

    def test_non_portfolio_solver_ignores_history(self, mdp):
        history = PortfolioHistory()
        result = formal_analysis(
            mdp, AnalysisConfig(epsilon=1e-2), portfolio_history=history
        )
        assert result.interval_width < 1e-2
        assert history.stats()["races"] == 0
