"""Tests of the mean-payoff solvers on MDPs with known optimal values."""

from __future__ import annotations

import pytest

from repro.exceptions import ConvergenceError, SolverError
from repro.mdp import (
    PORTFOLIO_BACKENDS,
    MDPBuilder,
    SolverPortfolio,
    discounted_value_iteration,
    policy_iteration,
    relative_value_iteration,
    solve_mean_payoff,
    solve_mean_payoff_batch,
    solve_mean_payoff_lp,
)


def single_state_mdp(reward: float = 3.0):
    builder = MDPBuilder()
    builder.add_action("s", "loop", [("s", 1.0, (reward,))])
    return builder.build(initial_state="s")


def choice_mdp():
    """One decision state with a good loop (reward 2) and a bad loop (reward 1)."""
    builder = MDPBuilder()
    builder.add_action("s", "good", [("s", 1.0, (2.0,))])
    builder.add_action("s", "bad", [("s", 1.0, (1.0,))])
    return builder.build(initial_state="s")


def cycle_mdp():
    """A two-state cycle where one action choice doubles the reward on the way back.

    Optimal mean payoff: alternate 0 and 4 -> 2.0.
    """
    builder = MDPBuilder()
    builder.add_action("a", "go", [("b", 1.0, (0.0,))])
    builder.add_action("b", "cheap", [("a", 1.0, (2.0,))])
    builder.add_action("b", "rich", [("a", 1.0, (4.0,))])
    return builder.build(initial_state="a")


def stochastic_mdp():
    """A stochastic MDP whose optimal gain is computable by hand.

    In state "a": action "safe" loops with reward 1; action "risky" moves to "b"
    (reward 0) from which the chain returns with reward 3.  Risky alternates
    rewards 0 and 3 -> mean 1.5 > 1, so "risky" is optimal.
    """
    builder = MDPBuilder()
    builder.add_action("a", "safe", [("a", 1.0, (1.0,))])
    builder.add_action("a", "risky", [("b", 1.0, (0.0,))])
    builder.add_action("b", "return", [("a", 1.0, (3.0,))])
    return builder.build(initial_state="a")


ALL_TEST_MDPS = [
    (single_state_mdp(), 3.0),
    (choice_mdp(), 2.0),
    (cycle_mdp(), 2.0),
    (stochastic_mdp(), 1.5),
]


class TestRelativeValueIteration:
    @pytest.mark.parametrize("mdp, expected", ALL_TEST_MDPS)
    def test_known_gains(self, mdp, expected):
        result = relative_value_iteration(mdp, [1.0], tolerance=1e-10)
        assert result.gain == pytest.approx(expected, abs=1e-6)
        assert result.lower_bound <= expected + 1e-9
        assert result.upper_bound >= expected - 1e-9

    def test_certified_bounds_bracket_gain(self):
        result = relative_value_iteration(stochastic_mdp(), [1.0], tolerance=1e-8)
        assert result.lower_bound <= result.gain <= result.upper_bound
        assert result.bound_width < 1e-7

    def test_optimal_strategy_extracted(self):
        result = relative_value_iteration(choice_mdp(), [1.0])
        assert result.strategy.action(0) == "good"

    def test_divergence_raises(self):
        with pytest.raises(ConvergenceError):
            relative_value_iteration(
                stochastic_mdp(), [1.0], tolerance=1e-12, max_iterations=1
            )

    def test_divergence_can_be_silenced(self):
        result = relative_value_iteration(
            stochastic_mdp(), [1.0], tolerance=1e-12, max_iterations=1, raise_on_divergence=False
        )
        assert not result.converged

    def test_invalid_damping_rejected(self):
        with pytest.raises(ValueError):
            relative_value_iteration(choice_mdp(), [1.0], damping=0.0)

    def test_negative_rewards(self):
        builder = MDPBuilder()
        builder.add_action("s", "loss", [("s", 1.0, (-1.5,))])
        mdp = builder.build(initial_state="s")
        result = relative_value_iteration(mdp, [1.0])
        assert result.gain == pytest.approx(-1.5, abs=1e-6)


class TestPolicyIteration:
    @pytest.mark.parametrize("mdp, expected", ALL_TEST_MDPS)
    def test_known_gains(self, mdp, expected):
        result = policy_iteration(mdp, [1.0])
        assert result.gain == pytest.approx(expected, abs=1e-9)
        assert result.converged

    def test_optimal_strategy_extracted(self):
        result = policy_iteration(cycle_mdp(), [1.0])
        assert result.strategy.action_of_label("b") == "rich"

    def test_warm_start_converges_faster_or_equal(self):
        mdp = stochastic_mdp()
        cold = policy_iteration(mdp, [1.0])
        warm = policy_iteration(mdp, [1.0], initial_strategy=cold.strategy)
        assert warm.iterations <= cold.iterations
        assert warm.gain == pytest.approx(cold.gain)

    def test_iteration_budget_exhaustion_raises(self):
        # max_iterations=0 never evaluates, which must raise rather than return junk.
        with pytest.raises(ConvergenceError):
            policy_iteration(cycle_mdp(), [1.0], max_iterations=0)


class TestLinearProgram:
    @pytest.mark.parametrize("mdp, expected", ALL_TEST_MDPS)
    def test_known_gains(self, mdp, expected):
        result = solve_mean_payoff_lp(mdp, [1.0])
        assert result.gain == pytest.approx(expected, abs=1e-7)

    def test_strategy_extraction(self):
        result = solve_mean_payoff_lp(choice_mdp(), [1.0])
        assert result.strategy.action(0) == "good"


class TestDiscountedValueIteration:
    def test_constant_reward_value(self):
        mdp = single_state_mdp(reward=1.0)
        result = discounted_value_iteration(mdp, [1.0], discount=0.9, tolerance=1e-10)
        assert result.values[0] == pytest.approx(10.0, rel=1e-6)

    def test_vanishing_discount_approximates_gain(self):
        result = discounted_value_iteration(stochastic_mdp(), [1.0], discount=0.999)
        assert result.mean_payoff_estimate() == pytest.approx(1.5, abs=0.01)

    def test_invalid_discount_rejected(self):
        with pytest.raises(ValueError):
            discounted_value_iteration(choice_mdp(), [1.0], discount=1.0)

    def test_budget_exhaustion_raises(self):
        with pytest.raises(ConvergenceError):
            discounted_value_iteration(
                stochastic_mdp(), [1.0], discount=0.9999, max_iterations=2
            )

    def test_greedy_strategy(self):
        result = discounted_value_iteration(choice_mdp(), [1.0], discount=0.9)
        assert result.strategy.action(0) == "good"


class TestSolveMeanPayoffFrontend:
    @pytest.mark.parametrize("solver", ["policy_iteration", "value_iteration", "linear_program"])
    def test_backends_agree(self, solver):
        solution = solve_mean_payoff(stochastic_mdp(), [1.0], solver=solver)
        assert solution.gain == pytest.approx(1.5, abs=1e-6)
        assert solution.solver == solver

    def test_unknown_backend_raises(self):
        with pytest.raises(SolverError):
            solve_mean_payoff(choice_mdp(), [1.0], solver="magic")

    def test_bounds_contain_gain(self):
        solution = solve_mean_payoff(cycle_mdp(), [1.0], solver="value_iteration")
        assert solution.lower_bound <= solution.gain <= solution.upper_bound

    def test_warm_start_accepted(self):
        mdp = cycle_mdp()
        first = solve_mean_payoff(mdp, [1.0])
        second = solve_mean_payoff(mdp, [1.0], warm_start=first.strategy)
        assert second.gain == pytest.approx(first.gain)


class TestBatchedSolvers:
    """Batched multi-reward solves must reproduce the sequential per-reward results."""

    WEIGHTS = [[1.0], [0.5], [-0.25], [2.0]]

    @pytest.mark.parametrize("solver", ["policy_iteration", "value_iteration"])
    @pytest.mark.parametrize("factory", [choice_mdp, cycle_mdp, stochastic_mdp])
    def test_batch_matches_sequential(self, solver, factory):
        mdp = factory()
        batch = solve_mean_payoff_batch(mdp, self.WEIGHTS, solver=solver)
        assert len(batch) == len(self.WEIGHTS)
        for weights, solution in zip(self.WEIGHTS, batch):
            reference = solve_mean_payoff(mdp, weights, solver=solver)
            assert solution.gain == pytest.approx(reference.gain, abs=1e-7)
            assert solution.solver == solver

    def test_batched_value_iteration_bounds_certified(self):
        batch = solve_mean_payoff_batch(cycle_mdp(), self.WEIGHTS, solver="value_iteration")
        for solution in batch:
            assert solution.lower_bound <= solution.gain <= solution.upper_bound
            assert solution.upper_bound - solution.lower_bound < 1e-8

    def test_linear_program_falls_back_to_sequential(self):
        batch = solve_mean_payoff_batch(stochastic_mdp(), [[1.0]], solver="linear_program")
        assert batch[0].gain == pytest.approx(1.5, abs=1e-6)

    def test_empty_batch(self):
        import numpy as np

        assert solve_mean_payoff_batch(choice_mdp(), np.empty((0, 1))) == []

    def test_bad_weight_matrix_shape_raises(self):
        with pytest.raises(SolverError):
            solve_mean_payoff_batch(choice_mdp(), [[1.0, 2.0]])

    def test_unknown_backend_raises(self):
        with pytest.raises(SolverError):
            solve_mean_payoff_batch(choice_mdp(), [[1.0]], solver="magic")

    def test_batched_warm_start_accepted(self):
        mdp = cycle_mdp()
        first = solve_mean_payoff(mdp, [1.0])
        batch = solve_mean_payoff_batch(
            mdp, self.WEIGHTS, warm_start=first.strategy, warm_start_bias=first.bias
        )
        assert batch[0].gain == pytest.approx(first.gain)


class TestSolverPortfolio:
    @pytest.mark.parametrize("factory", [choice_mdp, cycle_mdp, stochastic_mdp])
    def test_race_matches_reference(self, factory):
        mdp = factory()
        reference = solve_mean_payoff(mdp, [1.0], solver="policy_iteration")
        solution = solve_mean_payoff(mdp, [1.0], solver="portfolio")
        assert solution.gain == pytest.approx(reference.gain, abs=1e-6)
        assert solution.solver.startswith("portfolio:")
        assert solution.solver.split(":", 1)[1] in PORTFOLIO_BACKENDS

    def test_batched_race(self):
        batch = solve_mean_payoff_batch(
            stochastic_mdp(), [[1.0], [0.5]], solver="portfolio"
        )
        assert [s.gain for s in batch] == [
            pytest.approx(1.5, abs=1e-6),
            pytest.approx(0.75, abs=1e-6),
        ]
        assert all(s.solver.startswith("portfolio:") for s in batch)

    def test_survives_one_failing_backend(self):
        """A backend that raises must not lose the race for its rival.

        With ``max_iterations=1`` value iteration exceeds its budget and raises
        :class:`ConvergenceError`, while policy iteration (whose budget is
        floored at 100 improvement rounds by the front-end) still converges.
        """
        solution = SolverPortfolio().solve(stochastic_mdp(), [1.0], max_iterations=1)
        assert solution.gain == pytest.approx(1.5, abs=1e-6)
        assert solution.solver == "portfolio:policy_iteration"

    def test_all_backends_failing_reraises(self):
        portfolio = SolverPortfolio(backends=("value_iteration",))
        with pytest.raises(ConvergenceError):
            portfolio.solve(stochastic_mdp(), [1.0], max_iterations=1)

    def test_invalid_portfolio_configs_rejected(self):
        with pytest.raises(SolverError):
            SolverPortfolio(backends=())
        with pytest.raises(SolverError):
            SolverPortfolio(backends=("portfolio",))
        with pytest.raises(SolverError):
            SolverPortfolio(deadline=0.0)
