"""Tests of the MDP container and builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.mdp import MDP, MDPBuilder


def build_two_state_mdp() -> MDP:
    """A tiny two-state MDP used across several tests.

    State "a" can stay (reward 1) or move to "b" (reward 0); state "b" always
    returns to "a" with reward 2.
    """
    builder = MDPBuilder(num_reward_components=1)
    builder.add_action("a", "stay", [("a", 1.0, (1.0,))])
    builder.add_action("a", "go", [("b", 1.0, (0.0,))])
    builder.add_action("b", "back", [("a", 1.0, (2.0,))])
    return builder.build(initial_state="a")


class TestMDPBuilder:
    def test_add_state_is_idempotent(self):
        builder = MDPBuilder()
        assert builder.add_state("s") == builder.add_state("s")
        assert builder.num_states == 1

    def test_state_index_unknown_label_raises(self):
        builder = MDPBuilder()
        with pytest.raises(ModelError):
            builder.state_index("missing")

    def test_add_action_registers_successors(self):
        builder = MDPBuilder()
        builder.add_action("a", "go", [("b", 0.5, (0.0,)), ("c", 0.5, (0.0,))])
        assert builder.has_state("b") and builder.has_state("c")

    def test_add_action_rejects_bad_probability_sum(self):
        builder = MDPBuilder()
        with pytest.raises(ModelError):
            builder.add_action("a", "go", [("b", 0.5, (0.0,)), ("c", 0.4, (0.0,))])

    def test_add_action_rejects_negative_probability(self):
        builder = MDPBuilder()
        with pytest.raises(ModelError):
            builder.add_action("a", "go", [("b", -0.5, (0.0,)), ("c", 1.5, (0.0,))])

    def test_add_action_rejects_empty_distribution(self):
        builder = MDPBuilder()
        with pytest.raises(ModelError):
            builder.add_action("a", "go", [])

    def test_add_action_rejects_wrong_reward_length(self):
        builder = MDPBuilder(num_reward_components=2)
        with pytest.raises(ModelError):
            builder.add_action("a", "go", [("b", 1.0, (1.0,))])

    def test_add_action_rejects_duplicate_action(self):
        builder = MDPBuilder()
        builder.add_action("a", "go", [("a", 1.0, (0.0,))])
        with pytest.raises(ModelError):
            builder.add_action("a", "go", [("a", 1.0, (0.0,))])

    def test_zero_probability_transitions_are_dropped(self):
        builder = MDPBuilder()
        builder.add_action("a", "go", [("a", 1.0, (0.0,)), ("b", 0.0, (0.0,))])
        mdp = builder.build(initial_state="a")
        # "b" was registered but the zero-probability edge is absent.
        assert mdp.num_transitions == 1

    def test_build_requires_actions_in_every_state(self):
        builder = MDPBuilder()
        builder.add_action("a", "go", [("b", 1.0, (0.0,))])
        with pytest.raises(ModelError):
            builder.build(initial_state="a")

    def test_build_rejects_unknown_initial_state(self):
        builder = MDPBuilder()
        builder.add_action("a", "stay", [("a", 1.0, (0.0,))])
        with pytest.raises(ModelError):
            builder.build(initial_state="nope")

    def test_num_reward_components_must_be_positive(self):
        with pytest.raises(ModelError):
            MDPBuilder(num_reward_components=0)

    def test_probabilities_are_renormalised_on_build(self):
        builder = MDPBuilder()
        builder.add_action(
            "a", "go", [("a", 0.3333333, (0.0,)), ("b", 0.6666667, (0.0,))]
        )
        builder.add_action("b", "stay", [("b", 1.0, (0.0,))])
        mdp = builder.build(initial_state="a")
        sums = np.add.reduceat(mdp.trans_prob, mdp.row_trans_offsets[:-1])
        assert np.allclose(sums, 1.0)

    def test_has_action_and_num_actions(self):
        builder = MDPBuilder()
        builder.add_action("a", "x", [("a", 1.0, (0.0,))])
        assert builder.has_action("a", "x")
        assert not builder.has_action("a", "y")
        assert not builder.has_action("zzz", "x")
        assert builder.num_actions_of("a") == 1


class TestMDPQueries:
    def test_counts(self):
        mdp = build_two_state_mdp()
        assert mdp.num_states == 2
        assert mdp.num_rows == 3
        assert mdp.num_transitions == 3
        assert mdp.num_reward_components == 1

    def test_initial_state_index(self):
        mdp = build_two_state_mdp()
        assert mdp.state_labels[mdp.initial_state] == "a"

    def test_actions_of(self):
        mdp = build_two_state_mdp()
        state_a = mdp.state_of_label("a")
        assert mdp.actions_of(state_a) == ["stay", "go"]
        assert mdp.num_actions_of(state_a) == 2

    def test_row_index_lookup(self):
        mdp = build_two_state_mdp()
        state_a = mdp.state_of_label("a")
        row = mdp.row_index(state_a, "go")
        assert mdp.row_actions[row] == "go"
        assert mdp.row_state[row] == state_a

    def test_row_index_unknown_action_raises(self):
        mdp = build_two_state_mdp()
        with pytest.raises(ModelError):
            mdp.row_index(0, "missing")

    def test_state_of_label_unknown_raises(self):
        mdp = build_two_state_mdp()
        with pytest.raises(ModelError):
            mdp.state_of_label("zzz")

    def test_transitions_of_row(self):
        mdp = build_two_state_mdp()
        state_b = mdp.state_of_label("b")
        row = mdp.row_index(state_b, "back")
        transitions = mdp.transitions_of_row(row)
        assert len(transitions) == 1
        successor, probability, reward = transitions[0]
        assert successor == mdp.state_of_label("a")
        assert probability == pytest.approx(1.0)
        assert reward[0] == pytest.approx(2.0)

    def test_row_view(self):
        mdp = build_two_state_mdp()
        view = mdp.row(0)
        assert view.state == 0
        assert view.action == "stay"
        assert view.probabilities == (1.0,)

    def test_expected_row_rewards(self):
        mdp = build_two_state_mdp()
        rewards = mdp.expected_row_rewards([1.0])
        state_a = mdp.state_of_label("a")
        stay_row = mdp.row_index(state_a, "stay")
        go_row = mdp.row_index(state_a, "go")
        assert rewards[stay_row] == pytest.approx(1.0)
        assert rewards[go_row] == pytest.approx(0.0)

    def test_expected_row_rewards_wrong_weight_length(self):
        mdp = build_two_state_mdp()
        with pytest.raises(ModelError):
            mdp.expected_row_rewards([1.0, 2.0])

    def test_expected_row_reward_components_shape(self):
        mdp = build_two_state_mdp()
        components = mdp.expected_row_reward_components()
        assert components.shape == (mdp.num_rows, 1)

    def test_reward_weights_scale_linearly(self):
        mdp = build_two_state_mdp()
        single = mdp.expected_row_rewards([1.0])
        double = mdp.expected_row_rewards([2.0])
        assert np.allclose(double, 2.0 * single)

    def test_max_reward_magnitude(self):
        mdp = build_two_state_mdp()
        assert mdp.max_reward_magnitude() == pytest.approx(2.0)

    def test_uniform_random_row_choice_picks_first_rows(self):
        mdp = build_two_state_mdp()
        rows = mdp.uniform_random_row_choice()
        assert np.array_equal(mdp.row_state[rows], np.arange(mdp.num_states))

    def test_multi_component_rewards(self):
        builder = MDPBuilder(num_reward_components=2)
        builder.add_action("s", "loop", [("s", 1.0, (1.0, 3.0))])
        mdp = builder.build(initial_state="s")
        assert mdp.expected_row_rewards([1.0, 0.0])[0] == pytest.approx(1.0)
        assert mdp.expected_row_rewards([0.0, 1.0])[0] == pytest.approx(3.0)
        assert mdp.expected_row_rewards([1.0, -1.0])[0] == pytest.approx(-2.0)
