"""Tests of graph analysis (reachability, end components, unichain) and validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.mdp import (
    MDPBuilder,
    Strategy,
    end_components,
    is_unichain,
    reachable_states,
    validate_mdp,
)
from repro.mdp.reachability import recurrent_classes, strategy_digraph, underlying_digraph


def chain_mdp():
    """a -> b -> c (c absorbing), all deterministic."""
    builder = MDPBuilder()
    builder.add_action("a", "go", [("b", 1.0, (0.0,))])
    builder.add_action("b", "go", [("c", 1.0, (0.0,))])
    builder.add_action("c", "stay", [("c", 1.0, (0.0,))])
    return builder.build(initial_state="a")


def two_component_mdp():
    """Two disjoint absorbing loops reachable by a single initial choice."""
    builder = MDPBuilder()
    builder.add_action("s", "left", [("l", 1.0, (0.0,))])
    builder.add_action("s", "right", [("r", 1.0, (0.0,))])
    builder.add_action("l", "stay", [("l", 1.0, (1.0,))])
    builder.add_action("r", "stay", [("r", 1.0, (2.0,))])
    return builder.build(initial_state="s")


class TestReachability:
    def test_all_states_reachable_in_chain(self):
        mdp = chain_mdp()
        assert reachable_states(mdp) == {0, 1, 2}

    def test_reachable_from_intermediate_state(self):
        mdp = chain_mdp()
        state_b = mdp.state_of_label("b")
        assert reachable_states(mdp, from_state=state_b) == {state_b, mdp.state_of_label("c")}

    def test_underlying_digraph_edges(self):
        graph = underlying_digraph(chain_mdp())
        assert graph.has_edge(0, 1) and graph.has_edge(1, 2)
        assert not graph.has_edge(2, 0)

    def test_strategy_digraph_follows_choice(self):
        mdp = two_component_mdp()
        strategy = Strategy.from_action_map(mdp, {"s": "right"})
        graph = strategy_digraph(mdp, strategy)
        assert graph.has_edge(mdp.state_of_label("s"), mdp.state_of_label("r"))
        assert not graph.has_edge(mdp.state_of_label("s"), mdp.state_of_label("l"))


class TestRecurrence:
    def test_single_recurrent_class_in_chain(self):
        mdp = chain_mdp()
        classes = recurrent_classes(mdp, Strategy.first_action(mdp))
        assert classes == [{mdp.state_of_label("c")}]

    def test_unichain_detects_single_class(self):
        assert is_unichain(chain_mdp())

    def test_two_component_mdp_is_not_unichain(self):
        # Under any fixed strategy the loop that was not chosen is still a bottom
        # SCC of the induced chain, so the model has two recurrent classes and
        # fails the unichain check.
        assert not is_unichain(two_component_mdp())

    def test_multichain_strategy_detected(self):
        builder = MDPBuilder()
        builder.add_action("a", "stay", [("a", 1.0, (0.0,))])
        builder.add_action("b", "stay", [("b", 1.0, (0.0,))])
        builder.add_action("a", "go", [("b", 1.0, (0.0,))])
        mdp = builder.build(initial_state="a")
        stay_everywhere = Strategy.from_action_map(mdp, {"a": "stay", "b": "stay"})
        assert len(recurrent_classes(mdp, stay_everywhere)) == 2
        assert not is_unichain(mdp, strategies=[stay_everywhere])

    def test_end_components_of_two_component_mdp(self):
        mdp = two_component_mdp()
        components = end_components(mdp)
        as_sets = {frozenset(component) for component in components}
        assert frozenset({mdp.state_of_label("l")}) in as_sets
        assert frozenset({mdp.state_of_label("r")}) in as_sets

    def test_end_components_of_selfish_mining_model(self, model_d1f1):
        # The selfish-mining MDP is strongly connected enough that the initial
        # state lies inside a maximal end component.
        components = end_components(model_d1f1.mdp)
        assert any(model_d1f1.mdp.initial_state in component for component in components)


class TestValidation:
    def test_valid_model_passes(self):
        report = validate_mdp(chain_mdp())
        assert report.is_valid
        assert report.num_states == 3
        assert report.num_unreachable == 0

    def test_unreachable_states_detected(self):
        builder = MDPBuilder()
        builder.add_action("a", "stay", [("a", 1.0, (0.0,))])
        builder.add_action("zombie", "stay", [("zombie", 1.0, (0.0,))])
        mdp = builder.build(initial_state="a")
        with pytest.raises(ModelError):
            validate_mdp(mdp)
        report = validate_mdp(mdp, raise_on_error=False)
        assert report.num_unreachable == 1
        assert not report.is_valid

    def test_unreachable_states_can_be_allowed(self):
        builder = MDPBuilder()
        builder.add_action("a", "stay", [("a", 1.0, (0.0,))])
        builder.add_action("zombie", "stay", [("zombie", 1.0, (0.0,))])
        mdp = builder.build(initial_state="a")
        report = validate_mdp(mdp, require_reachable=False, raise_on_error=False)
        assert report.is_valid

    def test_corrupted_probabilities_detected(self):
        mdp = chain_mdp()
        mdp.trans_prob = np.array([0.5, 1.0, 1.0])  # break row 0 on purpose
        report = validate_mdp(mdp, raise_on_error=False)
        assert any("probability" in problem for problem in report.problems)

    def test_selfish_mining_models_are_valid(self, model_d1f1, model_d2f1):
        assert validate_mdp(model_d1f1.mdp).is_valid
        assert validate_mdp(model_d2f1.mdp).is_valid
