"""Tests of induced Markov chains: stationary distributions, gain/bias, ratios."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ModelError
from repro.mdp import MDPBuilder, MarkovChain, Strategy, induced_markov_chain


def two_state_chain(p_stay: float = 0.5, rewards=((1.0,), (0.0,))) -> MarkovChain:
    """Simple two-state chain with symmetric switching probability."""
    matrix = sp.csr_matrix(
        np.array([[p_stay, 1.0 - p_stay], [1.0 - p_stay, p_stay]])
    )
    return MarkovChain(transition_matrix=matrix, expected_rewards=np.array(rewards))


class TestMarkovChain:
    def test_validate_accepts_stochastic_matrix(self):
        two_state_chain().validate()

    def test_validate_rejects_non_stochastic_matrix(self):
        matrix = sp.csr_matrix(np.array([[0.5, 0.4], [0.5, 0.5]]))
        chain = MarkovChain(transition_matrix=matrix, expected_rewards=np.zeros((2, 1)))
        with pytest.raises(ModelError):
            chain.validate()

    def test_stationary_distribution_symmetric_chain(self):
        pi = two_state_chain().stationary_distribution()
        assert np.allclose(pi, [0.5, 0.5])

    def test_stationary_distribution_asymmetric_chain(self):
        # Birth-death chain: P(0->1)=0.2, P(1->0)=0.4 => pi = (2/3, 1/3).
        matrix = sp.csr_matrix(np.array([[0.8, 0.2], [0.4, 0.6]]))
        chain = MarkovChain(transition_matrix=matrix, expected_rewards=np.zeros((2, 1)))
        assert np.allclose(chain.stationary_distribution(), [2 / 3, 1 / 3])

    def test_stationary_distribution_single_state(self):
        matrix = sp.csr_matrix(np.array([[1.0]]))
        chain = MarkovChain(transition_matrix=matrix, expected_rewards=np.ones((1, 1)))
        assert np.allclose(chain.stationary_distribution(), [1.0])

    def test_stationary_distribution_sums_to_one(self):
        rng = np.random.default_rng(3)
        raw = rng.random((5, 5)) + 0.01
        matrix = sp.csr_matrix(raw / raw.sum(axis=1, keepdims=True))
        chain = MarkovChain(transition_matrix=matrix, expected_rewards=np.zeros((5, 1)))
        assert chain.stationary_distribution().sum() == pytest.approx(1.0)

    def test_long_run_reward_vector(self):
        chain = two_state_chain(rewards=((1.0, 2.0), (3.0, 0.0)))
        averages = chain.long_run_reward()
        assert np.allclose(averages, [2.0, 1.0])

    def test_long_run_reward_weighted(self):
        chain = two_state_chain(rewards=((1.0,), (0.0,)))
        assert chain.long_run_reward([2.0])[0] == pytest.approx(1.0)

    def test_gain_and_bias_satisfy_poisson_equation(self):
        chain = two_state_chain(p_stay=0.7, rewards=((1.0,), (0.0,)))
        gain, bias = chain.gain_and_bias([1.0])
        rewards = chain.expected_rewards @ np.array([1.0])
        lhs = bias + gain
        rhs = rewards + chain.transition_matrix @ bias
        assert np.allclose(lhs, rhs, atol=1e-8)
        assert gain == pytest.approx(0.5)

    def test_gain_reference_state_bias_is_zero(self):
        chain = two_state_chain(p_stay=0.25)
        _, bias = chain.gain_and_bias([1.0], reference_state=1)
        assert bias[1] == pytest.approx(0.0, abs=1e-9)

    def test_occupancy_ratio(self):
        chain = two_state_chain(rewards=((1.0, 0.0), (0.0, 1.0)))
        ratio = chain.occupancy_ratio([1.0, 0.0], [1.0, 1.0])
        assert ratio == pytest.approx(0.5)

    def test_occupancy_ratio_zero_denominator_raises(self):
        chain = two_state_chain(rewards=((0.0, 0.0), (0.0, 0.0)))
        from repro.exceptions import SolverError

        with pytest.raises(SolverError):
            chain.occupancy_ratio([1.0, 0.0], [1.0, 1.0])


class TestInducedChain:
    @pytest.fixture()
    def mdp(self):
        builder = MDPBuilder()
        builder.add_action("a", "stay", [("a", 0.5, (1.0,)), ("b", 0.5, (0.0,))])
        builder.add_action("a", "jump", [("b", 1.0, (0.0,))])
        builder.add_action("b", "back", [("a", 1.0, (2.0,))])
        return builder.build(initial_state="a")

    def test_induced_chain_shape(self, mdp):
        chain = induced_markov_chain(mdp, Strategy.first_action(mdp))
        assert chain.num_states == 2
        chain.validate()

    def test_induced_chain_respects_strategy(self, mdp):
        strategy = Strategy.from_action_map(mdp, {"a": "jump"})
        chain = induced_markov_chain(mdp, strategy)
        row = chain.transition_matrix.getrow(mdp.state_of_label("a")).toarray().ravel()
        assert row[mdp.state_of_label("b")] == pytest.approx(1.0)

    def test_induced_chain_expected_rewards(self, mdp):
        chain = induced_markov_chain(mdp, Strategy.first_action(mdp))
        state_a = mdp.state_of_label("a")
        assert chain.expected_rewards[state_a, 0] == pytest.approx(0.5)

    def test_strategy_of_other_mdp_rejected(self, mdp):
        builder = MDPBuilder()
        builder.add_action("x", "loop", [("x", 1.0, (0.0,))])
        other = builder.build(initial_state="x")
        with pytest.raises(ModelError):
            induced_markov_chain(mdp, Strategy.first_action(other))

    def test_long_run_reward_of_alternating_strategy(self, mdp):
        strategy = Strategy.from_action_map(mdp, {"a": "jump", "b": "back"})
        chain = induced_markov_chain(mdp, strategy)
        # Deterministic 2-cycle alternating rewards 0 and 2 -> average 1.
        assert chain.long_run_reward([1.0])[0] == pytest.approx(1.0)
