"""Tests of cooperative solver cancellation and the cancellable portfolio.

The solvers must stop at the next iteration boundary once their token is
cancelled, reporting the iterations completed; the portfolio must cancel race
losers, harvest their aborted-iteration counts, and still produce the same
certified results as the standalone backends.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import AnalysisConfig, AttackParams, ProtocolParams
from repro.analysis import formal_analysis
from repro.attacks import build_selfish_forks_mdp
from repro.exceptions import SolverCancelled
from repro.mdp import (
    CancellationToken,
    SolverPortfolio,
    batched_policy_iteration,
    batched_relative_value_iteration,
    policy_iteration,
    relative_value_iteration,
    solve_mean_payoff,
    solve_mean_payoff_batch,
)
from repro.analysis.rewards import beta_reward_weights

WEIGHTS = beta_reward_weights(0.4)


class TripAfterPolls(CancellationToken):
    """External token that flips cancelled after a fixed number of polls.

    Deterministic stand-in for "an external cancel arrives mid-race": the
    linked per-backend tokens poll their parent at every iteration boundary,
    so after ``polls`` polls every racing backend is provably *inside* its
    solve and must abort at the next boundary.
    """

    def __init__(self, polls: int) -> None:
        super().__init__()
        self.remaining = polls

    @property
    def cancelled(self) -> bool:  # polled via the linked child tokens
        self.remaining -= 1
        if self.remaining <= 0:
            self.cancel()
        return super().cancelled


@pytest.fixture(scope="module")
def mdp():
    return build_selfish_forks_mdp(
        ProtocolParams(p=0.3, gamma=0.5), AttackParams(depth=2, forks=1, max_fork_length=4)
    ).mdp


class TestToken:
    def test_starts_uncancelled_and_is_irreversible(self):
        token = CancellationToken()
        assert not token.cancelled
        token.cancel()
        token.cancel()
        assert token.cancelled

    def test_child_inherits_parent_cancellation(self):
        parent = CancellationToken()
        child = CancellationToken(parent=parent)
        assert not child.cancelled
        parent.cancel()
        assert child.cancelled
        with pytest.raises(SolverCancelled):
            child.raise_if_cancelled(solver="test", iterations=3)

    def test_cancelling_child_leaves_parent_and_siblings_alone(self):
        parent = CancellationToken()
        left = CancellationToken(parent=parent)
        right = CancellationToken(parent=parent)
        left.cancel()
        assert left.cancelled
        assert not parent.cancelled
        assert not right.cancelled

    def test_raise_if_cancelled_carries_iterations(self):
        token = CancellationToken()
        token.cancel()
        with pytest.raises(SolverCancelled) as excinfo:
            token.raise_if_cancelled(solver="test", iterations=17)
        assert excinfo.value.iterations == 17


class TestSolverCancellation:
    def test_value_iteration_stops_at_first_boundary(self, mdp):
        token = CancellationToken()
        token.cancel()
        with pytest.raises(SolverCancelled) as excinfo:
            relative_value_iteration(mdp, WEIGHTS, cancel_token=token)
        assert excinfo.value.iterations == 0

    def test_policy_iteration_stops_at_first_boundary(self, mdp):
        token = CancellationToken()
        token.cancel()
        with pytest.raises(SolverCancelled) as excinfo:
            policy_iteration(mdp, WEIGHTS, cancel_token=token)
        assert excinfo.value.iterations == 0

    def test_batched_value_iteration_cancellable(self, mdp):
        token = CancellationToken()
        token.cancel()
        matrix = np.array([beta_reward_weights(beta) for beta in (0.3, 0.4, 0.5)])
        with pytest.raises(SolverCancelled):
            batched_relative_value_iteration(mdp, matrix, cancel_token=token)

    def test_batched_policy_iteration_reports_chain_iterations(self, mdp):
        """Cancellation mid-chain must report rounds of *all* finished probes."""
        matrix = np.array([beta_reward_weights(beta) for beta in (0.3, 0.4, 0.5)])
        uncancelled = batched_policy_iteration(mdp, matrix)
        first_two = sum(result.iterations for result in uncancelled[:2])

        class TripAfterFirstTwoProbes(CancellationToken):
            # The chain offsets its poll count by the finished probes' rounds,
            # so cancelling at that threshold aborts inside the third probe.
            def raise_if_cancelled(self, *, solver, iterations):
                if iterations >= first_two:
                    self.cancel()
                super().raise_if_cancelled(solver=solver, iterations=iterations)

        with pytest.raises(SolverCancelled) as excinfo:
            batched_policy_iteration(mdp, matrix, cancel_token=TripAfterFirstTwoProbes())
        assert excinfo.value.iterations >= first_two

    def test_uncancelled_token_changes_nothing(self, mdp):
        token = CancellationToken()
        plain = relative_value_iteration(mdp, WEIGHTS)
        tracked = relative_value_iteration(mdp, WEIGHTS, cancel_token=token)
        assert tracked.gain == plain.gain
        assert tracked.iterations == plain.iterations

    def test_mid_solve_cancellation_from_another_thread(self, mdp):
        """A token cancelled concurrently stops the solver before its budget."""
        token = CancellationToken()
        timer = threading.Timer(0.01, token.cancel)
        timer.start()
        try:
            with pytest.raises(SolverCancelled):
                # Tiny tolerance and huge budget: without cancellation this
                # solve would spin for a very long time.
                relative_value_iteration(
                    mdp,
                    WEIGHTS,
                    tolerance=1e-300,
                    max_iterations=100_000_000,
                    cancel_token=token,
                )
        finally:
            timer.cancel()

    def test_solve_mean_payoff_propagates_token(self, mdp):
        token = CancellationToken()
        token.cancel()
        for solver in ("policy_iteration", "value_iteration"):
            with pytest.raises(SolverCancelled):
                solve_mean_payoff(mdp, WEIGHTS, solver=solver, cancel_token=token)


class TestPortfolioCancellation:
    def test_winner_matches_standalone_backends(self, mdp):
        reference = solve_mean_payoff(mdp, WEIGHTS, solver="policy_iteration")
        solution = solve_mean_payoff(mdp, WEIGHTS, solver="portfolio")
        assert solution.solver in ("portfolio:policy_iteration", "portfolio:value_iteration")
        assert solution.gain == pytest.approx(reference.gain, abs=1e-6)
        assert solution.cancelled_iterations >= 0

    def test_batch_records_cancelled_iterations_once(self, mdp):
        matrix = np.array([beta_reward_weights(beta) for beta in (0.3, 0.4, 0.5)])
        solutions = solve_mean_payoff_batch(mdp, matrix, solver="portfolio")
        assert len(solutions) == 3
        assert all(s.solver.startswith("portfolio:") for s in solutions)
        # The race-wide saving is recorded on the first solution only.
        assert all(s.cancelled_iterations == 0 for s in solutions[1:])

    def test_single_backend_portfolio_has_no_loser(self, mdp):
        portfolio = SolverPortfolio(backends=("policy_iteration",))
        solution = portfolio.solve(mdp, WEIGHTS)
        assert solution.solver == "portfolio:policy_iteration"
        assert solution.cancelled_iterations == 0

    def test_losers_stop_before_their_full_budget(self, mdp):
        """The cancelled losers' recorded work stays below their standalone cost.

        Value iteration needs hundreds of sweeps on this model while policy
        iteration finishes in a handful of rounds, so across a full analysis
        the cancelled iterations must total well under the standalone
        value-iteration budget (a loser running to completion would match it).
        """
        standalone = formal_analysis(
            mdp, AnalysisConfig(epsilon=1e-3, solver="value_iteration")
        )
        portfolio = formal_analysis(mdp, AnalysisConfig(epsilon=1e-3, solver="portfolio"))
        assert portfolio.interval_width < 1e-3
        assert portfolio.cancelled_solver_iterations >= 0
        assert (
            portfolio.cancelled_solver_iterations
            < standalone.total_solver_iterations + portfolio.total_solver_iterations
        )

    def test_external_precancelled_token_aborts_race(self, mdp):
        token = CancellationToken()
        token.cancel()
        with pytest.raises(SolverCancelled):
            solve_mean_payoff(mdp, WEIGHTS, solver="portfolio", cancel_token=token)

    def test_external_cancel_mid_race_aborts_both_backends(self, mdp):
        """Regression: an external cancel arriving *mid-solve* must stop the race.

        The external token used to be checked only before the race, so a
        coordinator shutdown could never interrupt running backends.  Policy
        iteration converges in ~5 rounds on this model, polling once per
        round; tripping on the 4th poll (1 pre-race + 3 boundary polls,
        shared by both backends) guarantees no backend can finish first.
        """
        token = TripAfterPolls(polls=4)
        with pytest.raises(SolverCancelled) as excinfo:
            solve_mean_payoff(
                mdp,
                WEIGHTS,
                solver="portfolio",
                tolerance=1e-300,  # without cancellation this spins ~forever
                max_iterations=100_000_000,
                cancel_token=token,
            )
        # The losing solver reports the iterations it completed before the
        # external stop -- proof it aborted at an iteration boundary mid-solve
        # rather than never starting.
        assert excinfo.value.iterations >= 0
        assert token.cancelled

    def test_external_cancel_mid_race_aborts_batched_solve(self, mdp):
        """The same deterministic mid-race cancel through the batched entry point."""
        token = TripAfterPolls(polls=4)
        matrix = np.array([beta_reward_weights(beta) for beta in (0.3, 0.4, 0.5)])
        with pytest.raises(SolverCancelled):
            solve_mean_payoff_batch(
                mdp,
                matrix,
                solver="portfolio",
                tolerance=1e-300,
                max_iterations=100_000_000,
                cancel_token=token,
            )
        assert token.cancelled

    def test_formal_analysis_records_cancellations(self, mdp):
        result = formal_analysis(mdp, AnalysisConfig(epsilon=1e-2, solver="portfolio"))
        assert result.interval_width < 1e-2
        assert result.cancelled_solver_iterations >= 0
        assert result.backend_wins

    def test_non_portfolio_analysis_reports_zero_cancellations(self, mdp):
        result = formal_analysis(mdp, AnalysisConfig(epsilon=1e-2))
        assert result.cancelled_solver_iterations == 0
