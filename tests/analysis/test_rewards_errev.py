"""Tests of the r_beta reward family and exact strategy evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.analysis import evaluate_strategy_errev
from repro.analysis.rewards import (
    ADVERSARY_WEIGHTS,
    HONEST_WEIGHTS,
    TOTAL_WEIGHTS,
    beta_reward_weights,
    combine_components,
    minimum_total_block_rate,
    reward_monotonicity_gap,
)
from repro.attacks.policies import GreedyLeadPolicy
from repro.mdp import Strategy, solve_mean_payoff


class TestBetaRewards:
    def test_weight_vectors_select_components(self):
        assert ADVERSARY_WEIGHTS == (1.0, 0.0)
        assert HONEST_WEIGHTS == (0.0, 1.0)
        assert TOTAL_WEIGHTS == (1.0, 1.0)

    @pytest.mark.parametrize("beta", [0.0, 0.25, 0.5, 1.0])
    def test_beta_weights_realise_the_papers_reward(self, beta):
        weights = np.asarray(beta_reward_weights(beta))
        r_adv, r_hon = 3.0, 2.0
        expected = r_adv - beta * (r_adv + r_hon)
        assert weights @ np.array([r_adv, r_hon]) == pytest.approx(expected)

    def test_beta_zero_is_pure_adversary_reward(self):
        assert beta_reward_weights(0.0) == (1.0, 0.0)

    def test_beta_one_is_negative_honest_reward(self):
        assert beta_reward_weights(1.0) == (0.0, -1.0)

    def test_invalid_beta_rejected(self):
        with pytest.raises(ConfigurationError):
            beta_reward_weights(1.5)

    def test_combine_components_matches_weights(self):
        r_adv = np.array([1.0, 0.0, 2.0])
        r_hon = np.array([0.0, 1.0, 1.0])
        beta = 0.4
        combined = combine_components(r_adv, r_hon, beta)
        weights = np.asarray(beta_reward_weights(beta))
        stacked = np.stack([r_adv, r_hon], axis=1)
        assert np.allclose(combined, stacked @ weights)

    def test_minimum_total_block_rate_formula(self):
        assert minimum_total_block_rate(0.3, 2, 2) == pytest.approx(0.7 / (0.7 + 0.3 * 4))
        assert minimum_total_block_rate(0.0, 3, 2) == pytest.approx(1.0)
        assert minimum_total_block_rate(1.0, 3, 2) == 0.0

    def test_monotonicity_gap(self):
        assert reward_monotonicity_gap(0.2, 0.5, 0.4) == pytest.approx(0.12)
        with pytest.raises(ValueError):
            reward_monotonicity_gap(0.5, 0.2, 0.4)


class TestStrategyEvaluation:
    def test_optimal_strategy_value_between_honest_and_one(self, model_d2f1, analysis_d2f1):
        value = evaluate_strategy_errev(model_d2f1.mdp, analysis_d2f1.strategy)
        assert 0.3 <= value <= 1.0

    def test_evaluation_is_deterministic(self, model_d2f1, analysis_d2f1):
        first = evaluate_strategy_errev(model_d2f1.mdp, analysis_d2f1.strategy)
        second = evaluate_strategy_errev(model_d2f1.mdp, analysis_d2f1.strategy)
        assert first == second

    def test_mean_payoff_sign_matches_errev_position(self, model_d2f1):
        # For beta strictly below the optimal ERRev the optimal mean payoff is
        # positive; strictly above it is negative (Theorem 3.1).
        below = solve_mean_payoff(model_d2f1.mdp, beta_reward_weights(0.05))
        above = solve_mean_payoff(model_d2f1.mdp, beta_reward_weights(0.95))
        assert below.gain > 0.0
        assert above.gain < 0.0

    def test_greedy_policy_is_dominated_by_optimal(self, model_d2f1, analysis_d2f1):
        # Translate the greedy-lead heuristic into a positional strategy and
        # check it never beats the strategy computed by Algorithm 1.
        mdp = model_d2f1.mdp
        policy = GreedyLeadPolicy(race_on_tie=True)
        rows = mdp.uniform_random_row_choice()
        for state in range(mdp.num_states):
            decision = policy.decide(mdp.state_labels[state])
            if decision.is_release:
                release = decision.release
                label = ("release", release.depth, release.fork, release.blocks)
                try:
                    rows[state] = mdp.row_index(state, label)
                    continue
                except Exception:
                    pass
            rows[state] = mdp.row_index(state, ("mine",))
        greedy_value = evaluate_strategy_errev(mdp, Strategy(mdp, rows))
        optimal_value = evaluate_strategy_errev(mdp, analysis_d2f1.strategy)
        assert greedy_value <= optimal_value + 1e-9
