"""End-to-end checks of the paper's qualitative experimental claims (Section 4).

These tests regenerate small slices of Figure 2 and assert the *shape* results
the paper reports: who wins, how the curves move with p, gamma, d and f, and
where the d = f = 1 attack starts to pay off.
"""

from __future__ import annotations

import pytest

from repro.config import AnalysisConfig, AttackParams, ProtocolParams
from repro.analysis import formal_analysis
from repro.attacks import build_selfish_forks_mdp, honest_errev, single_tree_errev
from repro.attacks.single_tree import SingleTreeParams

EPSILON = 1e-3


def attack_errev(p: float, gamma: float, depth: int, forks: int, max_fork_length: int = 4) -> float:
    model = build_selfish_forks_mdp(
        ProtocolParams(p=p, gamma=gamma),
        AttackParams(depth=depth, forks=forks, max_fork_length=max_fork_length),
    )
    result = formal_analysis(model.mdp, AnalysisConfig(epsilon=EPSILON))
    return result.strategy_errev


class TestFigure2Claims:
    def test_attack_dominates_honest_mining(self):
        # "Our selfish mining attack consistently achieves higher ERRev than both
        # baselines" -- at the paper's headline point p = 0.3.
        value = attack_errev(0.3, 0.5, depth=2, forks=1)
        assert value > honest_errev(ProtocolParams(p=0.3, gamma=0.5))

    def test_attack_dominates_single_tree_already_at_d2_f1(self):
        # "Already for d = 2 and f = 1 ... our attack achieves higher ERRev than
        # both baselines."
        protocol = ProtocolParams(p=0.3, gamma=0.5)
        ours = attack_errev(0.3, 0.5, depth=2, forks=1)
        baseline = single_tree_errev(protocol, SingleTreeParams(max_depth=4, max_width=5))
        assert ours > baseline

    def test_errev_increases_with_forking_number(self):
        d2f1 = attack_errev(0.3, 0.5, depth=2, forks=1)
        d2f2 = attack_errev(0.3, 0.5, depth=2, forks=2)
        assert d2f2 > d2f1

    def test_errev_increases_with_attack_depth(self):
        d1 = attack_errev(0.3, 0.5, depth=1, forks=1)
        d2 = attack_errev(0.3, 0.5, depth=2, forks=1)
        assert d2 > d1

    def test_errev_increases_with_adversarial_resource(self):
        values = [attack_errev(p, 0.5, depth=2, forks=1) for p in (0.1, 0.2, 0.3)]
        assert values == sorted(values)
        assert values[-1] > values[0]

    def test_errev_increases_with_gamma(self):
        # "Larger gamma values correspond to larger ERRev in our strategies."
        values = [attack_errev(0.3, gamma, depth=2, forks=1) for gamma in (0.0, 0.5, 1.0)]
        assert values == sorted(values)

    def test_zero_resource_adversary_earns_nothing(self):
        assert attack_errev(0.0, 0.5, depth=2, forks=1) == pytest.approx(0.0, abs=EPSILON)

    def test_attack_never_loses_to_honest_mining(self):
        # Honest mining is always available as a strategy, so the optimum cannot
        # be worse (up to the binary-search precision).
        for p in (0.1, 0.2, 0.3):
            assert attack_errev(p, 0.0, depth=2, forks=1) >= p - EPSILON


class TestD1F1Claims:
    """The paper: d = f = 1 coincides with honest mining for gamma < 0.5 and only
    starts to pay off for gamma > 0.5 and p > 0.25."""

    @pytest.mark.parametrize("gamma", [0.0, 0.25, 0.5])
    def test_matches_honest_mining_for_low_gamma(self, gamma):
        value = attack_errev(0.3, gamma, depth=1, forks=1)
        assert value == pytest.approx(0.3, abs=5e-3)

    @pytest.mark.parametrize("gamma", [0.75, 1.0])
    def test_pays_off_for_high_gamma_and_large_p(self, gamma):
        value = attack_errev(0.3, gamma, depth=1, forks=1)
        assert value > 0.3 + 0.01

    def test_does_not_pay_off_for_small_p(self):
        # Below the classic profitability threshold for gamma = 0.75 (~0.167)
        # withholding earns nothing extra, so the optimum collapses to honest
        # mining.
        value = attack_errev(0.15, 0.75, depth=1, forks=1)
        assert value == pytest.approx(0.15, abs=5e-3)


class TestChainQualityInterpretation:
    def test_chain_quality_is_one_minus_errev(self):
        protocol = ProtocolParams(p=0.3, gamma=0.5)
        value = attack_errev(0.3, 0.5, depth=2, forks=1)
        chain_quality = 1.0 - value
        assert chain_quality < 1.0 - honest_errev(protocol)
