"""Tests of Algorithm 1, the Dinkelbach cross-check and the theorem certificates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import AnalysisConfig
from repro.analysis import (
    check_theorem_premises,
    dinkelbach_analysis,
    evaluate_strategy_errev,
    formal_analysis,
)


class TestBatchedBisection:
    """Batched probes must reproduce the sequential search's certified bounds."""

    @pytest.mark.parametrize("solver", ["policy_iteration", "value_iteration"])
    @pytest.mark.parametrize("batch_probes", [2, 3, 7])
    def test_matches_sequential_within_epsilon(
        self, model_d2f1, analysis_d2f1, solver, batch_probes
    ):
        batched = formal_analysis(
            model_d2f1.mdp,
            AnalysisConfig(epsilon=1e-3, solver=solver, batch_probes=batch_probes),
        )
        assert batched.interval_width < 1e-3
        assert batched.errev_lower_bound == pytest.approx(
            analysis_d2f1.errev_lower_bound, abs=1e-3
        )
        assert batched.beta_up == pytest.approx(analysis_d2f1.beta_up, abs=1e-3)
        # The certified intervals of both searches must overlap: each brackets ERRev*.
        assert batched.beta_low <= analysis_d2f1.beta_up + 1e-12
        assert batched.beta_up >= analysis_d2f1.beta_low - 1e-12

    def test_fewer_rounds_than_sequential(self, model_d2f1, analysis_d2f1):
        batched = formal_analysis(
            model_d2f1.mdp, AnalysisConfig(epsilon=1e-3, batch_probes=7)
        )
        # 7 probes shrink the interval 8x per round: ceil(log_8(1000)) = 4 rounds
        # instead of 10 sequential halvings.
        rounds = batched.num_iterations // 7
        assert rounds < analysis_d2f1.num_iterations
        assert batched.num_iterations % 7 == 0

    def test_portfolio_batched(self, model_d2f1, analysis_d2f1):
        batched = formal_analysis(
            model_d2f1.mdp,
            AnalysisConfig(epsilon=1e-3, solver="portfolio", batch_probes=3),
        )
        assert batched.errev_lower_bound == pytest.approx(
            analysis_d2f1.errev_lower_bound, abs=1e-3
        )
        assert batched.backend_wins
        assert batched.winning_solver in ("policy_iteration", "value_iteration")

    def test_strategy_achieves_lower_bound(self, model_d2f1):
        batched = formal_analysis(
            model_d2f1.mdp, AnalysisConfig(epsilon=1e-3, batch_probes=4)
        )
        achieved = evaluate_strategy_errev(model_d2f1.mdp, batched.strategy)
        assert achieved >= batched.errev_lower_bound - 1e-9

    def test_iteration_log_has_per_probe_entries(self, model_d2f1):
        batched = formal_analysis(
            model_d2f1.mdp, AnalysisConfig(epsilon=1e-2, batch_probes=3)
        )
        for record in batched.iterations:
            assert record.solver_iterations > 0
            assert record.beta_low <= record.beta_up


class TestInitialBiasValidation:
    """Mis-shaped warm-start bias vectors must fall back to a cold start."""

    def test_wrong_length_bias_ignored(self, model_d2f1):
        result = formal_analysis(
            model_d2f1.mdp, AnalysisConfig(epsilon=1e-2), initial_bias=[1.0, 2.0, 3.0]
        )
        assert result.interval_width < 1e-2

    def test_ragged_bias_ignored(self, model_d2f1):
        result = formal_analysis(
            model_d2f1.mdp, AnalysisConfig(epsilon=1e-2), initial_bias=[[1.0, 2.0], [3.0]]
        )
        assert result.interval_width < 1e-2

    def test_non_numeric_bias_ignored(self, model_d2f1):
        result = formal_analysis(
            model_d2f1.mdp, AnalysisConfig(epsilon=1e-2), initial_bias=object()
        )
        assert result.interval_width < 1e-2

    def test_non_finite_bias_ignored(self, model_d2f1):
        bad = np.full(model_d2f1.mdp.num_states, np.nan)
        result = formal_analysis(
            model_d2f1.mdp, AnalysisConfig(epsilon=1e-2), initial_bias=bad
        )
        assert result.interval_width < 1e-2
        assert np.isfinite(result.errev_lower_bound)

    def test_two_dimensional_bias_ignored(self, model_d2f1):
        bad = np.zeros((model_d2f1.mdp.num_states, 2))
        result = formal_analysis(
            model_d2f1.mdp,
            AnalysisConfig(epsilon=1e-2, solver="value_iteration"),
            initial_bias=bad,
        )
        assert result.interval_width < 1e-2

    def test_valid_bias_still_honoured(self, model_d2f1):
        config = AnalysisConfig(epsilon=1e-3, solver="value_iteration")
        seed = formal_analysis(model_d2f1.mdp, config)
        warm = formal_analysis(model_d2f1.mdp, config, initial_bias=seed.final_bias)
        assert warm.errev_lower_bound == pytest.approx(seed.errev_lower_bound, abs=1e-3)


class TestAlgorithm1:
    def test_interval_width_below_epsilon(self, analysis_d2f1):
        assert analysis_d2f1.interval_width < analysis_d2f1.epsilon

    def test_lower_bound_is_achieved_by_strategy(self, model_d2f1, analysis_d2f1):
        achieved = evaluate_strategy_errev(model_d2f1.mdp, analysis_d2f1.strategy)
        # Theorem 3.1: the strategy optimal for r_{beta_low} achieves at least beta_low.
        assert achieved >= analysis_d2f1.errev_lower_bound - 1e-9

    def test_strategy_errev_recorded(self, analysis_d2f1):
        assert analysis_d2f1.strategy_errev is not None
        assert analysis_d2f1.strategy_errev >= analysis_d2f1.errev_lower_bound - 1e-9

    def test_number_of_iterations_matches_precision(self, model_d2f1):
        # Binary search over [0, 1] terminates once the width drops *below*
        # epsilon = 2^-5, which takes exactly 6 halvings.
        result = formal_analysis(model_d2f1.mdp, AnalysisConfig(epsilon=2**-5))
        assert result.num_iterations == 6

    def test_iteration_log_is_consistent(self, analysis_d2f1):
        for record in analysis_d2f1.iterations:
            assert 0.0 <= record.beta_low <= record.beta <= record.beta_up <= 1.0 or (
                record.beta_low <= record.beta_up
            )
            assert record.solve_seconds >= 0.0
        # The interval shrinks monotonically.
        widths = [record.beta_up - record.beta_low for record in analysis_d2f1.iterations]
        assert widths == sorted(widths, reverse=True)

    def test_tighter_epsilon_never_loosens_the_bound(self, model_d2f1):
        coarse = formal_analysis(model_d2f1.mdp, AnalysisConfig(epsilon=0.05))
        fine = formal_analysis(model_d2f1.mdp, AnalysisConfig(epsilon=0.005))
        assert fine.errev_lower_bound >= coarse.errev_lower_bound - 1e-9
        assert fine.beta_up <= coarse.beta_up + 1e-9

    def test_custom_initial_interval(self, model_d2f1, analysis_d2f1):
        result = formal_analysis(
            model_d2f1.mdp, AnalysisConfig(epsilon=1e-3), beta_low=0.3, beta_up=0.6
        )
        assert result.errev_lower_bound == pytest.approx(
            analysis_d2f1.errev_lower_bound, abs=2e-3
        )

    def test_invalid_interval_rejected(self, model_d2f1):
        with pytest.raises(ValueError):
            formal_analysis(model_d2f1.mdp, AnalysisConfig(), beta_low=0.9, beta_up=0.1)

    def test_evaluation_can_be_disabled(self, model_d1f1):
        result = formal_analysis(
            model_d1f1.mdp, AnalysisConfig(epsilon=1e-2, evaluate_strategy=False)
        )
        assert result.strategy_errev is None

    @pytest.mark.parametrize("solver", ["policy_iteration", "value_iteration", "linear_program"])
    def test_solver_backends_agree(self, model_d1f1, solver):
        result = formal_analysis(
            model_d1f1.mdp, AnalysisConfig(epsilon=1e-3, solver=solver)
        )
        assert result.strategy_errev == pytest.approx(0.3, abs=2e-3)

    def test_exceeds_honest_mining_for_d2(self, analysis_d2f1):
        assert analysis_d2f1.strategy_errev > 0.3 + 0.05


class TestDinkelbach:
    def test_agrees_with_algorithm1(self, model_d2f1, analysis_d2f1):
        result = dinkelbach_analysis(model_d2f1.mdp, AnalysisConfig(epsilon=1e-4))
        assert result.errev == pytest.approx(analysis_d2f1.strategy_errev, abs=1e-3)

    def test_converges_in_few_iterations(self, model_d2f1):
        result = dinkelbach_analysis(model_d2f1.mdp, AnalysisConfig(epsilon=1e-6))
        assert result.num_iterations <= 10

    def test_iterates_are_monotone_non_decreasing(self, model_d2f1):
        result = dinkelbach_analysis(model_d2f1.mdp, AnalysisConfig(epsilon=1e-6))
        betas = [record.next_beta for record in result.iterations]
        assert all(later >= earlier - 1e-9 for earlier, later in zip(betas, betas[1:]))

    def test_warm_start_from_honest_value(self, model_d2f1, analysis_d2f1):
        result = dinkelbach_analysis(
            model_d2f1.mdp, AnalysisConfig(epsilon=1e-5), initial_beta=0.3
        )
        assert result.errev == pytest.approx(analysis_d2f1.strategy_errev, abs=1e-3)


class TestCertificates:
    def test_premises_hold_on_small_model(self, model_d1f1):
        report = check_theorem_premises(
            model_d1f1.mdp, config=AnalysisConfig(epsilon=1e-3), strategy_samples=5
        )
        assert report.all_hold
        assert report.unichain
        assert report.monotone
        assert report.min_total_block_rate > 0.0

    def test_gain_grid_is_monotone_decreasing(self, model_d2f1):
        report = check_theorem_premises(
            model_d2f1.mdp,
            config=AnalysisConfig(epsilon=1e-3),
            betas=(0.0, 0.5, 1.0),
            strategy_samples=3,
        )
        assert report.probed_gains[0] >= report.probed_gains[1] >= report.probed_gains[2]

    def test_gain_at_beta_zero_positive_and_at_one_negative(self, model_d2f1):
        report = check_theorem_premises(
            model_d2f1.mdp,
            config=AnalysisConfig(epsilon=1e-3),
            betas=(0.0, 1.0),
            strategy_samples=2,
        )
        assert report.probed_gains[0] > 0.0
        assert report.probed_gains[-1] < 0.0
