"""Tests of Algorithm 1, the Dinkelbach cross-check and the theorem certificates."""

from __future__ import annotations

import pytest

from repro.config import AnalysisConfig
from repro.analysis import (
    check_theorem_premises,
    dinkelbach_analysis,
    evaluate_strategy_errev,
    formal_analysis,
)


class TestAlgorithm1:
    def test_interval_width_below_epsilon(self, analysis_d2f1):
        assert analysis_d2f1.interval_width < analysis_d2f1.epsilon

    def test_lower_bound_is_achieved_by_strategy(self, model_d2f1, analysis_d2f1):
        achieved = evaluate_strategy_errev(model_d2f1.mdp, analysis_d2f1.strategy)
        # Theorem 3.1: the strategy optimal for r_{beta_low} achieves at least beta_low.
        assert achieved >= analysis_d2f1.errev_lower_bound - 1e-9

    def test_strategy_errev_recorded(self, analysis_d2f1):
        assert analysis_d2f1.strategy_errev is not None
        assert analysis_d2f1.strategy_errev >= analysis_d2f1.errev_lower_bound - 1e-9

    def test_number_of_iterations_matches_precision(self, model_d2f1):
        # Binary search over [0, 1] terminates once the width drops *below*
        # epsilon = 2^-5, which takes exactly 6 halvings.
        result = formal_analysis(model_d2f1.mdp, AnalysisConfig(epsilon=2**-5))
        assert result.num_iterations == 6

    def test_iteration_log_is_consistent(self, analysis_d2f1):
        for record in analysis_d2f1.iterations:
            assert 0.0 <= record.beta_low <= record.beta <= record.beta_up <= 1.0 or (
                record.beta_low <= record.beta_up
            )
            assert record.solve_seconds >= 0.0
        # The interval shrinks monotonically.
        widths = [record.beta_up - record.beta_low for record in analysis_d2f1.iterations]
        assert widths == sorted(widths, reverse=True)

    def test_tighter_epsilon_never_loosens_the_bound(self, model_d2f1):
        coarse = formal_analysis(model_d2f1.mdp, AnalysisConfig(epsilon=0.05))
        fine = formal_analysis(model_d2f1.mdp, AnalysisConfig(epsilon=0.005))
        assert fine.errev_lower_bound >= coarse.errev_lower_bound - 1e-9
        assert fine.beta_up <= coarse.beta_up + 1e-9

    def test_custom_initial_interval(self, model_d2f1, analysis_d2f1):
        result = formal_analysis(
            model_d2f1.mdp, AnalysisConfig(epsilon=1e-3), beta_low=0.3, beta_up=0.6
        )
        assert result.errev_lower_bound == pytest.approx(
            analysis_d2f1.errev_lower_bound, abs=2e-3
        )

    def test_invalid_interval_rejected(self, model_d2f1):
        with pytest.raises(ValueError):
            formal_analysis(model_d2f1.mdp, AnalysisConfig(), beta_low=0.9, beta_up=0.1)

    def test_evaluation_can_be_disabled(self, model_d1f1):
        result = formal_analysis(
            model_d1f1.mdp, AnalysisConfig(epsilon=1e-2, evaluate_strategy=False)
        )
        assert result.strategy_errev is None

    @pytest.mark.parametrize("solver", ["policy_iteration", "value_iteration", "linear_program"])
    def test_solver_backends_agree(self, model_d1f1, solver):
        result = formal_analysis(
            model_d1f1.mdp, AnalysisConfig(epsilon=1e-3, solver=solver)
        )
        assert result.strategy_errev == pytest.approx(0.3, abs=2e-3)

    def test_exceeds_honest_mining_for_d2(self, analysis_d2f1):
        assert analysis_d2f1.strategy_errev > 0.3 + 0.05


class TestDinkelbach:
    def test_agrees_with_algorithm1(self, model_d2f1, analysis_d2f1):
        result = dinkelbach_analysis(model_d2f1.mdp, AnalysisConfig(epsilon=1e-4))
        assert result.errev == pytest.approx(analysis_d2f1.strategy_errev, abs=1e-3)

    def test_converges_in_few_iterations(self, model_d2f1):
        result = dinkelbach_analysis(model_d2f1.mdp, AnalysisConfig(epsilon=1e-6))
        assert result.num_iterations <= 10

    def test_iterates_are_monotone_non_decreasing(self, model_d2f1):
        result = dinkelbach_analysis(model_d2f1.mdp, AnalysisConfig(epsilon=1e-6))
        betas = [record.next_beta for record in result.iterations]
        assert all(later >= earlier - 1e-9 for earlier, later in zip(betas, betas[1:]))

    def test_warm_start_from_honest_value(self, model_d2f1, analysis_d2f1):
        result = dinkelbach_analysis(
            model_d2f1.mdp, AnalysisConfig(epsilon=1e-5), initial_beta=0.3
        )
        assert result.errev == pytest.approx(analysis_d2f1.strategy_errev, abs=1e-3)


class TestCertificates:
    def test_premises_hold_on_small_model(self, model_d1f1):
        report = check_theorem_premises(
            model_d1f1.mdp, config=AnalysisConfig(epsilon=1e-3), strategy_samples=5
        )
        assert report.all_hold
        assert report.unichain
        assert report.monotone
        assert report.min_total_block_rate > 0.0

    def test_gain_grid_is_monotone_decreasing(self, model_d2f1):
        report = check_theorem_premises(
            model_d2f1.mdp,
            config=AnalysisConfig(epsilon=1e-3),
            betas=(0.0, 0.5, 1.0),
            strategy_samples=3,
        )
        assert report.probed_gains[0] >= report.probed_gains[1] >= report.probed_gains[2]

    def test_gain_at_beta_zero_positive_and_at_one_negative(self, model_d2f1):
        report = check_theorem_premises(
            model_d2f1.mdp,
            config=AnalysisConfig(epsilon=1e-3),
            betas=(0.0, 1.0),
            strategy_samples=2,
        )
        assert report.probed_gains[0] > 0.0
        assert report.probed_gains[-1] < 0.0
