"""Tests of the adaptive probe scheduling mode (``batch_probes="auto"``).

The scheduler's cost-model arithmetic is tested deterministically with
synthetic observations; the end-to-end mode is checked against the sequential
bisection's certified bounds, which it must reproduce within epsilon.
"""

from __future__ import annotations

import pytest

from repro import AnalysisConfig, AttackParams, ProtocolParams
from repro.analysis import AdaptiveProbeScheduler, formal_analysis
from repro.attacks import build_selfish_forks_mdp

EPSILON = 1e-3


@pytest.fixture(scope="module")
def model():
    return build_selfish_forks_mdp(
        ProtocolParams(p=0.3, gamma=0.5), AttackParams(depth=2, forks=1, max_fork_length=4)
    )


@pytest.fixture(scope="module")
def sequential(model):
    return formal_analysis(model.mdp, AnalysisConfig(epsilon=EPSILON))


class TestScheduler:
    def test_first_round_is_classic_bisection(self):
        scheduler = AdaptiveProbeScheduler()
        assert scheduler.next_probes(1.0, EPSILON) == 1

    def test_second_round_seeds_the_batched_regime(self):
        scheduler = AdaptiveProbeScheduler(seed_probes=4)
        scheduler.record(1, 0.1)
        assert scheduler.next_probes(0.5, EPSILON) == 4

    def test_cheap_marginal_probes_drive_k_up(self):
        """Near-zero marginal probe cost: the widest allowed round wins."""
        scheduler = AdaptiveProbeScheduler(max_probes=16)
        scheduler.record(1, 1.0)
        scheduler.record(4, 1.03)  # 3 extra probes for ~3% extra time
        assert scheduler.next_probes(1.0, EPSILON) == 16

    def test_expensive_marginal_probes_fall_back_to_bisection(self):
        """Each probe as dear as a full solve: log(k+1)/k peaks at k = 1."""
        scheduler = AdaptiveProbeScheduler(max_probes=16)
        scheduler.record(1, 1.0)
        scheduler.record(4, 4.0)
        assert scheduler.next_probes(1.0, EPSILON) == 1

    def test_probes_capped_by_remaining_interval(self):
        """The last round never solves probes beyond what finishes the search."""
        scheduler = AdaptiveProbeScheduler(max_probes=16)
        scheduler.record(1, 1.0)
        scheduler.record(4, 1.03)
        # width / epsilon = 3.2: two probes leave width/3 < epsilon.
        assert scheduler.next_probes(3.2 * EPSILON, EPSILON) <= 3

    def test_identical_observations_stay_pessimistic(self):
        """No slope information: the mean cost is charged per probe."""
        scheduler = AdaptiveProbeScheduler(max_probes=16)
        scheduler.record(3, 1.0)
        scheduler.record(3, 1.0)
        assert scheduler.next_probes(1.0, EPSILON) == 1

    def test_invalid_max_probes_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveProbeScheduler(max_probes=0)


class TestAutoModeEndToEnd:
    @pytest.mark.parametrize("solver", ["policy_iteration", "value_iteration", "portfolio"])
    def test_auto_matches_sequential_bounds(self, model, sequential, solver):
        result = formal_analysis(
            model.mdp, AnalysisConfig(epsilon=EPSILON, solver=solver, batch_probes="auto")
        )
        assert result.interval_width < EPSILON
        assert result.beta_low == pytest.approx(sequential.beta_low, abs=EPSILON)
        assert result.beta_up == pytest.approx(sequential.beta_up, abs=EPSILON)
        assert result.beta_low <= result.strategy_errev + 1e-9

    def test_auto_spends_fewer_rounds_than_bisection(self, model, sequential):
        """Adaptive batching must reduce the number of solve rounds."""
        result = formal_analysis(
            model.mdp, AnalysisConfig(epsilon=EPSILON, batch_probes="auto")
        )
        betas_per_round = {}
        for record in result.iterations:
            betas_per_round.setdefault((record.beta_low, record.beta_up), []).append(record.beta)
        assert len(betas_per_round) < sequential.num_iterations

    def test_auto_composes_with_warm_start_disabled(self, model, sequential):
        result = formal_analysis(
            model.mdp,
            AnalysisConfig(epsilon=EPSILON, batch_probes="auto", warm_start=False),
        )
        assert result.interval_width < EPSILON
        assert result.beta_low == pytest.approx(sequential.beta_low, abs=EPSILON)


class TestConfigValidation:
    def test_auto_accepted(self):
        assert AnalysisConfig(batch_probes="auto").batch_probes == "auto"

    def test_other_strings_rejected(self):
        with pytest.raises(ValueError):
            AnalysisConfig(batch_probes="adaptive")

    def test_non_positive_int_rejected(self):
        with pytest.raises(ValueError):
            AnalysisConfig(batch_probes=0)

    def test_auto_serialises(self):
        assert AnalysisConfig(batch_probes="auto").to_dict()["batch_probes"] == "auto"
