"""Engine-level tests: suppressions, reporters, CLI surface, self-cleanliness."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.lint.engine import (
    PARSE_ERROR_RULE,
    lint_paths,
    main as lint_main,
    package_relpath,
    render_json,
    render_text,
)
from repro.lint.rules import ALL_RULES
from repro.lint.rules.determinism import CertifiedPathDeterminismRule

REPO_ROOT = Path(__file__).resolve().parents[2]
PACKAGE = REPO_ROOT / "src" / "repro"

RL003 = [CertifiedPathDeterminismRule()]

_VIOLATING = """
import random

def jitter():
    return random.random()
"""

_VIOLATING_SUPPRESSED_LINE = """
import random  # repro-lint: disable=RL003

def jitter():
    return random.random()  # repro-lint: disable=RL003
"""

_VIOLATING_SUPPRESSED_FILE = """
# repro-lint: disable-file=RL003
import random

def jitter():
    return random.random()
"""


# ------------------------------------------------------------- suppressions


def test_line_suppression_waives_exactly_that_line(harness):
    violations = harness.lint(
        "mdp/solver.py",
        """
        import random  # repro-lint: disable=RL003

        def jitter():
            return random.random()
        """,
        RL003,
    )
    # The import line is waived; the call still fires.
    assert [v.rule_id for v in violations] == ["RL003"]
    assert violations[0].line == 5


def test_line_suppression_all_and_full_file(harness):
    assert harness.lint("mdp/a.py", _VIOLATING_SUPPRESSED_LINE, RL003) == []
    assert harness.lint("mdp/b.py", _VIOLATING_SUPPRESSED_FILE, RL003) == []
    all_waiver = _VIOLATING.replace(
        "import random", "import random  # repro-lint: disable=all"
    ).replace("random.random()", "random.random()  # repro-lint: disable=all")
    assert harness.lint("mdp/c.py", all_waiver, RL003) == []


def test_unrelated_suppression_does_not_waive(harness):
    violations = harness.lint(
        "mdp/solver.py",
        """
        import random  # repro-lint: disable=RL001
        """,
        RL003,
    )
    assert [v.rule_id for v in violations] == ["RL003"]


# ------------------------------------------------------------- parse errors


def test_unparseable_file_reports_rl000(harness):
    violations = harness.lint("mdp/broken.py", "def broken(:\n", ALL_RULES)
    assert [v.rule_id for v in violations] == [PARSE_ERROR_RULE]
    assert "does not parse" in violations[0].message


# ---------------------------------------------------------------- reporters


def test_text_reporter_shows_location_and_fix_hint(harness):
    violations = harness.lint("mdp/solver.py", _VIOLATING, RL003)
    text = render_text(violations, 1)
    assert "mdp/solver.py:2:0: RL003" in text.splitlines()[0]
    assert any(line.startswith("    fix: ") for line in text.splitlines())
    assert text.rstrip().endswith("2 violation(s) in 1 file")


def test_json_reporter_round_trips(harness):
    violations = harness.lint("mdp/solver.py", _VIOLATING, RL003)
    payload = json.loads(render_json(violations, 1))
    assert payload["files_checked"] == 1
    assert len(payload["violations"]) == 2
    first = payload["violations"][0]
    assert first["rule_id"] == "RL003"
    assert set(first) == {"rule_id", "path", "line", "column", "message", "fix_hint"}


def test_clean_text_report():
    assert render_text([], 3) == "clean: 3 files, 0 violations"


# -------------------------------------------------------------- path scoping


def test_package_relpath_strips_src_and_repro_prefixes(tmp_path):
    assert package_relpath(PACKAGE / "core" / "engine.py") == "core/engine.py"
    fixture = tmp_path / "core" / "bad.py"
    fixture.parent.mkdir(parents=True)
    fixture.write_text("x = 1\n", encoding="utf-8")
    assert package_relpath(fixture, tmp_path) == "core/bad.py"


# ---------------------------------------------------------------- CLI surface


def test_module_main_exit_codes(tmp_path, capsys):
    bad = tmp_path / "mdp" / "solver.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(_VIOLATING, encoding="utf-8")
    assert lint_main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "RL003" in out

    bad.write_text("x = 1\n", encoding="utf-8")
    assert lint_main([str(tmp_path)]) == 0
    assert lint_main([str(tmp_path / "missing")]) == 2


def test_cli_subcommand_matches_module_entry(tmp_path, capsys):
    bad = tmp_path / "attacks" / "thing.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(_VIOLATING, encoding="utf-8")
    assert cli_main(["lint", str(tmp_path)]) == 1
    assert "RL003" in capsys.readouterr().out
    assert cli_main(["lint", "--format", "json", str(tmp_path)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["violations"]


def test_select_restricts_rules(tmp_path, capsys):
    bad = tmp_path / "mdp" / "solver.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(_VIOLATING, encoding="utf-8")
    # RL001 does not fire on this fixture, so selecting it alone is clean.
    assert lint_main(["--select", "RL001", str(tmp_path)]) == 0
    capsys.readouterr()
    assert lint_main(["--select", "RL003", str(tmp_path)]) == 1
    capsys.readouterr()
    with pytest.raises(SystemExit, match="unknown rule id"):
        lint_main(["--select", "RL999", str(tmp_path)])


def test_list_rules_names_every_rule(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule.rule_id in out
        assert rule.invariant in out


def test_python_dash_m_entry_point(tmp_path):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(PACKAGE)],
        capture_output=True,
        text=True,
        cwd=str(tmp_path),
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


# ----------------------------------------------------------------- self-clean


def test_package_lints_clean():
    """The acceptance gate: `repro lint src/repro` exits 0 on this tree."""
    violations, files_checked = lint_paths([PACKAGE])
    assert files_checked > 50
    assert violations == []
