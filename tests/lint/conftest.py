"""Shared fixture machinery of the lint-rule tests.

Every rule test writes a small fixture snippet into a temp tree whose layout
mirrors the package (``core/...``, ``attacks/...``) -- the engine normalises
fixture paths relative to the linted directory, so a fixture at
``<case>/core/bad.py`` is scoped exactly like the real ``core/`` modules.
"""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import List, Optional, Sequence

import pytest

from repro.lint.engine import LintViolation, Rule, lint_paths


class LintHarness:
    """Write fixture files under per-case temp trees and lint them."""

    def __init__(self, root: Path) -> None:
        self.root = root
        self._case = 0

    def write(self, relpath: str, source: str) -> Path:
        """Write a dedented fixture snippet at ``relpath`` in a fresh case tree."""
        self._case += 1
        path = self.root / f"case{self._case}" / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        return path

    def lint(
        self,
        relpath: str,
        source: str,
        rules: Optional[Sequence[Rule]] = None,
    ) -> List[LintViolation]:
        """Write one fixture and return the violations reported on its tree.

        The *directory* of the case is linted (not the bare file) so the
        engine sees the package-relative layout and applies path scoping.
        """
        path = self.write(relpath, source)
        case_dir = self.root / f"case{self._case}"
        violations, files_checked = lint_paths([case_dir], rules)
        assert files_checked == 1, (path, files_checked)
        return violations


@pytest.fixture
def harness(tmp_path: Path) -> LintHarness:
    """A fresh fixture tree per test."""
    return LintHarness(tmp_path)
