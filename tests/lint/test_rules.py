"""Fixture-driven positive/negative cases for every lint rule.

Each rule gets at least one fixture proving it *fires* on violating code and
one proving it stays *quiet* on compliant code; scoping tests prove rules do
not leak outside their path scopes.
"""

from __future__ import annotations

from repro.lint.rules import ALL_RULES
from repro.lint.rules.async_safety import ForkAsyncSafetyRule
from repro.lint.rules.determinism import CertifiedPathDeterminismRule
from repro.lint.rules.fault_sites import FaultSiteRegistrationRule
from repro.lint.rules.merge_pipeline import MergePipelineRule
from repro.lint.rules.scenario_contract import REQUIRED_HOOKS, ScenarioContractRule
from repro.lint.rules.shm_lifecycle import SharedMemoryLifecycleRule
from repro.lint.rules.wire_schema import WireSchemaAgreementRule

RL001 = [SharedMemoryLifecycleRule()]
RL002 = [ForkAsyncSafetyRule()]
RL003 = [CertifiedPathDeterminismRule()]
RL004 = [WireSchemaAgreementRule()]
RL005 = [ScenarioContractRule()]
RL006 = [FaultSiteRegistrationRule()]
RL007 = [MergePipelineRule()]


def ids(violations):
    return [v.rule_id for v in violations]


# --------------------------------------------------------------------- RL001


def test_rl001_fires_on_shared_memory_outside_substrate(harness):
    violations = harness.lint(
        "core/engine.py",
        """
        from multiprocessing import shared_memory

        def grab(name):
            return shared_memory.SharedMemory(name=name)
        """,
        RL001,
    )
    assert ids(violations) == ["RL001", "RL001"]  # the import and the call
    assert "substrate" in violations[0].message
    assert violations[0].fix_hint


def test_rl001_quiet_on_plane_api_users(harness):
    violations = harness.lint(
        "core/sweep.py",
        """
        from .shared_structures import publish_structures

        def run(structure):
            return publish_structures(structure)
        """,
        RL001,
    )
    assert violations == []


def test_rl001_fires_on_planes_touching_shared_memory_directly(harness):
    """The planes lost their exemption: only core/shm.py may touch SharedMemory."""
    for plane in ("core/shared_structures.py", "core/results_plane.py"):
        violations = harness.lint(
            plane,
            """
            from multiprocessing import shared_memory

            def attach(name):
                return shared_memory.SharedMemory(name=name)
            """,
            RL001,
        )
        assert ids(violations) == ["RL001", "RL001"], plane
        assert "core/shm.py" in violations[0].message


def test_rl001_fires_on_unpaired_create_inside_substrate(harness):
    violations = harness.lint(
        "core/shm.py",
        """
        from multiprocessing import shared_memory

        def leak(num_bytes):
            segment = shared_memory.SharedMemory(create=True, size=num_bytes)
            return segment.name
        """,
        RL001,
    )
    messages = " ".join(v.message for v in violations)
    assert ids(violations) == ["RL001", "RL001", "RL001"]
    assert "not wrapped in a try" in messages
    assert "release machinery" in messages
    assert "atexit" in messages


def test_rl001_quiet_on_release_paired_create(harness):
    violations = harness.lint(
        "core/shm.py",
        """
        import atexit
        from multiprocessing import shared_memory

        _ACTIVE = {}

        @atexit.register
        def _backstop():
            for segment in _ACTIVE.values():
                segment.close()
                segment.unlink()

        def publish(num_bytes):
            segment = None
            try:
                segment = shared_memory.SharedMemory(create=True, size=num_bytes)
                _ACTIVE[segment.name] = segment
            except Exception:
                if segment is not None:
                    segment.close()
                    segment.unlink()
                raise
            return segment.name
        """,
        RL001,
    )
    assert violations == []


def test_rl001_flags_module_level_create(harness):
    violations = harness.lint(
        "core/shm.py",
        """
        import atexit
        from multiprocessing import shared_memory

        SEGMENT = shared_memory.SharedMemory(create=True, size=8)
        atexit.register(SEGMENT.close)
        """,
        RL001,
    )
    assert any("module level" in v.message for v in violations)


# --------------------------------------------------------------------- RL002


def test_rl002_fires_on_blocking_call_in_coroutine(harness):
    violations = harness.lint(
        "core/distributed.py",
        """
        import time

        async def heartbeat():
            time.sleep(1.0)
        """,
        RL002,
    )
    assert ids(violations) == ["RL002"]
    assert "blocking call time.sleep()" in violations[0].message


def test_rl002_quiet_on_async_sleep_and_nested_sync_def(harness):
    violations = harness.lint(
        "core/distributed.py",
        """
        import asyncio
        import time

        async def heartbeat():
            await asyncio.sleep(1.0)

            def measure():
                # Runs wherever it is called from, not on the event loop.
                time.sleep(0.01)

            return measure
        """,
        RL002,
    )
    assert violations == []


def test_rl002_fires_on_unguarded_global_rebinding(harness):
    violations = harness.lint(
        "core/engine.py",
        """
        _CACHE = None

        def cache():
            global _CACHE
            if _CACHE is None:
                _CACHE = object()
            return _CACHE
        """,
        RL002,
    )
    assert ids(violations) == ["RL002"]
    assert "_CACHE" in violations[0].message


def test_rl002_quiet_on_lock_guarded_global(harness):
    violations = harness.lint(
        "core/engine.py",
        """
        import threading

        _CACHE = None
        _CACHE_LOCK = threading.Lock()

        def cache():
            global _CACHE
            with _CACHE_LOCK:
                if _CACHE is None:
                    _CACHE = object()
                return _CACHE
        """,
        RL002,
    )
    assert violations == []


def test_rl002_fires_on_bare_acquire(harness):
    violations = harness.lint(
        "core/engine.py",
        """
        import threading

        LOCK = threading.Lock()

        def critical():
            LOCK.acquire()
            try:
                return 1
            finally:
                LOCK.release()
        """,
        RL002,
    )
    assert ids(violations) == ["RL002"]
    assert ".acquire()" in violations[0].message


def test_rl002_global_check_scoped_to_engine_trees(harness):
    # Same unguarded-global fixture, but outside core/attacks/mdp/analysis.
    violations = harness.lint(
        "reporting/tables.py",
        """
        _CACHE = None

        def cache():
            global _CACHE
            _CACHE = object()
            return _CACHE
        """,
        RL002,
    )
    assert violations == []


# --------------------------------------------------------------------- RL003


def test_rl003_fires_on_stdlib_random(harness):
    violations = harness.lint(
        "mdp/solver.py",
        """
        import random

        def jitter():
            return random.random()
        """,
        RL003,
    )
    assert ids(violations) == ["RL003", "RL003"]  # the import and the call
    assert "hidden global RNG state" in violations[0].message


def test_rl003_fires_on_legacy_numpy_random_and_wall_clock(harness):
    violations = harness.lint(
        "analysis/formal.py",
        """
        import time

        import numpy as np

        def noisy():
            return np.random.rand(3) * time.time()
        """,
        RL003,
    )
    messages = " ".join(v.message for v in violations)
    assert ids(violations) == ["RL003", "RL003"]
    assert "np.random.rand" in messages
    assert "wall-clock read time.time()" in messages


def test_rl003_quiet_on_seeded_rng_and_monotonic_timers(harness):
    violations = harness.lint(
        "attacks/simulate.py",
        """
        import time

        import numpy as np

        def simulate(seed):
            rng = np.random.default_rng(seed)
            start = time.perf_counter()
            draws = rng.random(10)
            return draws, time.perf_counter() - start
        """,
        RL003,
    )
    assert violations == []


def test_rl003_fires_on_set_iteration(harness):
    violations = harness.lint(
        "attacks/structure.py",
        """
        def build(edges):
            return [edge for edge in set(edges)]
        """,
        RL003,
    )
    assert ids(violations) == ["RL003"]
    assert "hash-seed-dependent order" in violations[0].message


def test_rl003_quiet_on_sorted_set_iteration(harness):
    violations = harness.lint(
        "attacks/structure.py",
        """
        def build(edges):
            return [edge for edge in sorted(set(edges))]
        """,
        RL003,
    )
    assert violations == []


def test_rl003_scoped_to_certified_paths(harness):
    # random use outside attacks/mdp/analysis is out of scope for RL003.
    violations = harness.lint(
        "core/sweep.py",
        """
        import random

        def shuffle_order(items):
            random.shuffle(items)
            return items
        """,
        RL003,
    )
    assert violations == []


# --------------------------------------------------------------------- RL004


def test_rl004_fires_on_consumed_key_never_produced(harness):
    violations = harness.lint(
        "core/distributed.py",
        """
        def send(writer):
            writer.write({"type": "hello", "capacity": 4})

        def receive(header):
            kind = header.get("type")
            if kind == "hello":
                return header.get("capacityy")
            return None
        """,
        RL004,
    )
    assert ids(violations) == ["RL004"]
    assert "capacityy" in violations[0].message


def test_rl004_fires_on_dispatch_type_never_produced(harness):
    violations = harness.lint(
        "core/distributed.py",
        """
        def send(writer):
            writer.write({"type": "hello"})

        def receive(header):
            kind = header.get("type")
            if kind == "hello":
                return 1
            if kind == "wellcome":
                return 2
            return 0
        """,
        RL004,
    )
    messages = " ".join(v.message for v in violations)
    assert "'wellcome' is dispatched on but never produced" in messages


def test_rl004_fires_on_produced_type_never_dispatched(harness):
    violations = harness.lint(
        "core/distributed.py",
        """
        def send(writer):
            writer.write({"type": "hello"})
            writer.write({"type": "goodbye"})

        def receive(header):
            kind = header.get("type")
            if kind == "hello":
                return 1
            return 0
        """,
        RL004,
    )
    messages = " ".join(v.message for v in violations)
    assert "'goodbye' is produced but never dispatched on" in messages


def test_rl004_fires_on_one_sided_protocol_version(harness):
    violations = harness.lint(
        "core/distributed.py",
        """
        PROTOCOL_VERSION = 3

        def send(writer):
            writer.write({"type": "hello", "protocol": PROTOCOL_VERSION})

        def receive(header):
            kind = header.get("type")
            if kind == "hello":
                return header.get("protocol")
            return None
        """,
        RL004,
    )
    messages = " ".join(v.message for v in violations)
    assert "PROTOCOL_VERSION is sent but never checked" in messages


def test_rl004_quiet_on_agreeing_schema(harness):
    violations = harness.lint(
        "core/distributed.py",
        """
        PROTOCOL_VERSION = 3

        def send(writer):
            writer.write({"type": "hello", "protocol": PROTOCOL_VERSION})
            writer.write({"type": "work", "task": 1})

        def receive(header):
            kind = header.get("type")
            if kind == "hello":
                if header.get("protocol") != PROTOCOL_VERSION:
                    raise ValueError("protocol mismatch")
                return None
            if kind == "work":
                return header["task"]
            return None
        """,
        RL004,
    )
    assert violations == []


def test_rl004_scoped_to_distributed_module(harness):
    # The same drifted fixture elsewhere in core/ is out of scope.
    violations = harness.lint(
        "core/engine.py",
        """
        def send(writer):
            writer.write({"type": "hello"})

        def receive(header):
            return header.get("unproduced")
        """,
        RL004,
    )
    assert violations == []


# --------------------------------------------------------------------- RL005


def _scenario_source(*, buffer_keys: bool, hooks) -> str:
    """A ``@register_attack`` class fixture with the chosen contract pieces."""
    lines = [
        "from repro.attacks.registry import register_attack",
        "",
        "",
        '@register_attack("custom")',
        "class CustomStructure:",
    ]
    if buffer_keys:
        lines.append('    BUFFER_KEYS = ("states",)')
    for hook in hooks:
        lines.extend(["", f"    def {hook}(self):", "        return None"])
    if not buffer_keys and not hooks:
        lines.append("    pass")
    return "\n".join(lines) + "\n"


def test_rl005_fires_on_missing_buffer_keys(harness):
    violations = harness.lint(
        "attacks/custom.py",
        _scenario_source(buffer_keys=False, hooks=REQUIRED_HOOKS),
        RL005,
    )
    assert ids(violations) == ["RL005"]
    assert "BUFFER_KEYS" in violations[0].message


def test_rl005_fires_on_missing_hooks(harness):
    violations = harness.lint(
        "attacks/custom.py",
        _scenario_source(buffer_keys=True, hooks=["explore"]),
        RL005,
    )
    assert ids(violations) == ["RL005"]
    missing = set(REQUIRED_HOOKS) - {"explore"}
    for hook in missing:
        assert hook in violations[0].message


def test_rl005_quiet_on_complete_contract(harness):
    violations = harness.lint(
        "attacks/custom.py",
        _scenario_source(buffer_keys=True, hooks=REQUIRED_HOOKS),
        RL005,
    )
    assert violations == []


def test_rl005_ignores_unregistered_classes(harness):
    violations = harness.lint(
        "attacks/helpers.py",
        """
        class NotAScenario:
            pass
        """,
        RL005,
    )
    assert violations == []


# --------------------------------------------------------------------- RL006


def test_rl006_fires_on_unregistered_site(harness):
    violations = harness.lint(
        "core/engine.py",
        """
        from repro.core.faults import maybe_fail

        def run():
            if maybe_fail("engine.totally_new_site"):
                raise RuntimeError("boom")
        """,
        RL006,
    )
    assert ids(violations) == ["RL006"]
    assert "engine.totally_new_site" in violations[0].message
    assert "FAULT_SITES" in violations[0].message


def test_rl006_fires_on_dynamic_site_name(harness):
    violations = harness.lint(
        "core/distributed.py",
        """
        from repro.core.faults import maybe_fail

        def run(site):
            return maybe_fail(site)
        """,
        RL006,
    )
    assert ids(violations) == ["RL006"]
    assert "string literal" in violations[0].message


def test_rl006_quiet_on_registered_literal_sites(harness):
    violations = harness.lint(
        "core/engine.py",
        """
        from repro.core import faults
        from repro.core.faults import maybe_fail

        def run():
            if maybe_fail("engine.point_transient"):
                raise RuntimeError("boom")
            if faults.maybe_fail("distributed.result_drop"):
                return None
        """,
        RL006,
    )
    assert violations == []


def test_rl006_applies_outside_core(harness):
    # No path scope: a stray maybe_fail anywhere in the package is checked.
    violations = harness.lint(
        "attacks/custom.py",
        """
        from repro.core.faults import maybe_fail

        def run():
            return maybe_fail("attacks.unheard_of")
        """,
        RL006,
    )
    assert ids(violations) == ["RL006"]


# --------------------------------------------------------------------- RL007


def test_rl007_fires_on_direct_assembly(harness):
    violations = harness.lint(
        "core/custom_backend.py",
        """
        from repro.core.engine import assemble_sweep_result

        def finish(config, outcomes, report):
            return assemble_sweep_result(config, outcomes, report, description="x")
        """,
        RL007,
    )
    assert ids(violations) == ["RL007"]
    assert "MergeSink.assemble" in violations[0].message
    assert violations[0].fix_hint


def test_rl007_fires_on_side_channel_journal_append(harness):
    violations = harness.lint(
        "core/custom_backend.py",
        """
        def merge(self, outcome):
            self.journal.record(outcome)
        """,
        RL007,
    )
    assert ids(violations) == ["RL007"]
    assert "journal" in violations[0].message


def test_rl007_fires_on_ad_hoc_metadata_counters(harness):
    violations = harness.lint(
        "core/custom_backend.py",
        """
        def attach(result, stats):
            result.metadata["fabric"] = stats
            result.metadata.update(stats)
        """,
        RL007,
    )
    assert ids(violations) == ["RL007", "RL007"]
    assert all("ExecutionBackend.metadata" in v.message for v in violations)


def test_rl007_quiet_inside_the_execution_plane(harness):
    violations = harness.lint(
        "core/execution.py",
        """
        def assemble(self, result, journal, outcome):
            journal.record(outcome)
            result.metadata["journal"] = {"recorded": journal.recorded}
        """,
        RL007,
    )
    assert violations == []


def test_rl007_quiet_inside_the_assembler_itself(harness):
    # assemble_sweep_result owns the portfolio/recovery summaries it builds.
    violations = harness.lint(
        "core/engine.py",
        """
        def assemble_sweep_result(config, outcomes, report, description):
            result = build(config, outcomes, description)
            result.metadata["portfolio"] = {"races": 0}
            return result
        """,
        RL007,
    )
    assert violations == []


def test_rl007_quiet_on_non_journal_record_calls(harness):
    # algorithm1's probe scheduler has a record() too -- not a journal.
    violations = harness.lint(
        "analysis/algorithm1.py",
        """
        def solve(scheduler, probes, elapsed):
            scheduler.record(probes, elapsed)
        """,
        RL007,
    )
    assert violations == []


# ------------------------------------------------------------------ registry


def test_all_rules_have_unique_ids_and_metadata():
    seen = set()
    for rule in ALL_RULES:
        assert rule.rule_id.startswith("RL") and rule.rule_id not in seen
        seen.add(rule.rule_id)
        assert rule.title and rule.invariant and rule.fix_hint
    assert sorted(seen) == [
        "RL001",
        "RL002",
        "RL003",
        "RL004",
        "RL005",
        "RL006",
        "RL007",
    ]
