"""Anti-rot checks for the documentation surface.

The docs CI job runs the link check and executes the examples; these tests
additionally pin the CLI reference to the actual argument parser so a flag
cannot be added, renamed or removed without ``docs/cli.md`` following.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

import pytest

from repro.cli import _build_parser

REPO_ROOT = Path(__file__).resolve().parents[1]
TOOLS = REPO_ROOT / "tools"
if str(TOOLS) not in sys.path:
    sys.path.insert(0, str(TOOLS))

from check_links import check_links  # noqa: E402


def _parser_options() -> set:
    """Every long option string of every subcommand parser."""
    parser = _build_parser()
    options = set()
    subparsers = next(
        action for action in parser._actions if hasattr(action, "choices") and action.choices
    )
    for sub in subparsers.choices.values():
        for action in sub._actions:
            options.update(opt for opt in action.option_strings if opt.startswith("--"))
    options.discard("--help")
    return options


def _documented_options() -> set:
    text = (REPO_ROOT / "docs" / "cli.md").read_text(encoding="utf-8")
    return set(re.findall(r"(--[a-z][a-z0-9-]*)", text))


def test_every_parser_flag_is_documented():
    missing = _parser_options() - _documented_options()
    assert not missing, f"flags absent from docs/cli.md: {sorted(missing)}"


def test_every_documented_flag_exists():
    stale = _documented_options() - _parser_options()
    assert not stale, f"docs/cli.md documents unknown flags: {sorted(stale)}"


def test_cli_subcommands_match_docs():
    text = (REPO_ROOT / "docs" / "cli.md").read_text(encoding="utf-8")
    parser = _build_parser()
    subparsers = next(
        action for action in parser._actions if hasattr(action, "choices") and action.choices
    )
    for name in subparsers.choices:
        assert f"repro {name}" in text, f"subcommand {name!r} undocumented in docs/cli.md"


def test_required_documents_exist():
    for relative in ("README.md", "docs/cli.md", "docs/architecture.md"):
        assert (REPO_ROOT / relative).exists(), relative


def test_no_broken_documentation_links():
    broken, local, _ = check_links()
    assert local > 0, "link check found no local links at all (pattern rot?)"
    assert not broken, "\n".join(broken)


@pytest.mark.parametrize("example", ["quickstart.py", "distributed_sweep.py"])
def test_examples_referenced_by_readme_exist(example):
    assert (REPO_ROOT / "examples" / example).exists()
    assert example in (REPO_ROOT / "README.md").read_text(encoding="utf-8")
